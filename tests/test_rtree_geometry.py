"""Unit and property tests for rectangles and RKV95 metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree.geometry import (
    Rect,
    TWO_PI,
    intersects_circular,
    union_all,
)


def boxes(dim=3):
    coord = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
    return st.lists(
        st.tuples(coord, coord), min_size=dim, max_size=dim
    ).map(
        lambda pairs: Rect(
            [min(a, b) for a, b in pairs], [max(a, b) for a, b in pairs]
        )
    )


class TestConstruction:
    def test_point_rect_is_degenerate(self):
        r = Rect.from_point([1.0, 2.0, 3.0])
        assert r.is_point()
        assert r.area() == 0.0

    def test_around_builds_linf_ball(self):
        r = Rect.around([0.0, 0.0], 2.0)
        assert np.array_equal(r.lows, [-2, -2])
        assert np.array_equal(r.highs, [2, 2])

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Rect([1.0], [0.0])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            Rect([0.0, 0.0], [1.0])

    def test_rect_copies_input(self):
        lows = np.zeros(2)
        r = Rect(lows, [1.0, 1.0])
        lows[0] = 99.0
        assert r.lows[0] == 0.0


class TestMeasures:
    def test_area_and_margin(self):
        r = Rect([0, 0, 0], [2, 3, 4])
        assert r.area() == 24.0
        assert r.margin() == 9.0

    def test_enlargement(self):
        a = Rect([0, 0], [1, 1])
        b = Rect([2, 2], [3, 3])
        assert a.enlargement(b) == 9.0 - 1.0

    def test_overlap_area_disjoint_is_zero(self):
        a = Rect([0, 0], [1, 1])
        b = Rect([2, 2], [3, 3])
        assert a.overlap_area(b) == 0.0

    def test_overlap_area_partial(self):
        a = Rect([0, 0], [2, 2])
        b = Rect([1, 1], [3, 3])
        assert a.overlap_area(b) == 1.0


class TestRelations:
    def test_touching_rectangles_intersect(self):
        a = Rect([0, 0], [1, 1])
        b = Rect([1, 1], [2, 2])
        assert a.intersects(b)

    def test_containment(self):
        outer = Rect([0, 0], [10, 10])
        inner = Rect([2, 2], [3, 3])
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_contains_point_boundary_is_closed(self):
        r = Rect([0, 0], [1, 1])
        assert r.contains_point([1.0, 1.0])
        assert not r.strictly_contains_point([1.0, 1.0])

    def test_intersection_region(self):
        a = Rect([0, 0], [2, 2])
        b = Rect([1, 1], [3, 3])
        got = a.intersection(b)
        assert got == Rect([1, 1], [2, 2])
        assert a.intersection(Rect([5, 5], [6, 6])) is None


class TestRKVMetrics:
    def test_mindist_zero_inside(self):
        r = Rect([0, 0], [2, 2])
        assert r.mindist([1, 1]) == 0.0

    def test_mindist_outside(self):
        r = Rect([0, 0], [1, 1])
        assert r.mindist([4, 5]) == pytest.approx(5.0)

    def test_minmaxdist_point_rect(self):
        # For a degenerate rect, both metrics equal the point distance.
        r = Rect.from_point([3.0, 4.0])
        assert r.mindist([0, 0]) == pytest.approx(5.0)
        assert r.minmaxdist([0, 0]) == pytest.approx(5.0)

    def test_minmaxdist_known_square(self):
        # Unit square, query at origin: nearest face has farthest corner
        # (0,1) or (1,0) at distance 1.
        r = Rect([0, 0], [1, 1])
        assert r.minmaxdist([0, 0]) == pytest.approx(1.0)

    def test_max_dist_is_farthest_corner(self):
        r = Rect([0, 0], [1, 1])
        assert r.max_dist([0, 0]) == pytest.approx(math.sqrt(2))

    @settings(max_examples=100, deadline=None)
    @given(boxes(), st.lists(st.floats(-1e6, 1e6), min_size=3, max_size=3))
    def test_mindist_le_minmaxdist_le_maxdist(self, rect, point):
        p = np.array(point)
        assert rect.mindist(p) <= rect.minmaxdist(p) + 1e-6
        assert rect.minmaxdist(p) <= rect.max_dist(p) + 1e-6

    @settings(max_examples=100, deadline=None)
    @given(boxes(), st.lists(st.floats(-1e3, 1e3), min_size=3, max_size=3))
    def test_mindist_is_attained_by_clamp(self, rect, point):
        p = np.array(point)
        clamped = np.clip(p, rect.lows, rect.highs)
        assert rect.mindist(p) == pytest.approx(
            float(np.linalg.norm(p - clamped))
        )


class TestUnion:
    def test_union_all(self):
        rects = [Rect([0, 0], [1, 1]), Rect([-1, 2], [0, 3]), Rect([5, 5], [6, 6])]
        u = union_all(rects)
        assert u == Rect([-1, 0], [6, 6])

    def test_union_all_empty_rejected(self):
        with pytest.raises(ValueError):
            union_all([])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(boxes(), min_size=1, max_size=8))
    def test_union_contains_every_member(self, rects):
        u = union_all(rects)
        assert all(u.contains(r) for r in rects)


class TestCircularIntersection:
    def test_plain_dims_behave_normally(self):
        a = Rect([0.0], [1.0])
        b = Rect([2.0], [3.0])
        assert not intersects_circular(a, b, np.array([False]))

    def test_wraparound_intervals_meet_across_seam(self):
        # [3.0, 3.5] and [-3.3, -3.1] (i.e. ~2.98..3.18 rad) overlap on the
        # circle even though the raw intervals are disjoint on the line.
        a = Rect([3.0], [3.5])
        b = Rect([-3.3], [-3.1])
        mask = np.array([True])
        assert intersects_circular(a, b, mask)
        assert not a.intersects(b)

    def test_disjoint_on_circle(self):
        a = Rect([0.0], [0.5])
        b = Rect([2.0], [2.5])
        assert not intersects_circular(a, b, np.array([True]))

    def test_full_circle_interval_matches_everything(self):
        a = Rect([-math.pi], [math.pi])
        b = Rect([17.0], [17.1])
        assert intersects_circular(a, b, np.array([True]))

    def test_mixed_dimensions(self):
        mask = np.array([False, True])
        a = Rect([0.0, 3.0], [1.0, 3.5])
        b = Rect([0.5, -3.3], [2.0, -3.1])
        assert intersects_circular(a, b, mask)
        # Break the linear dimension: no intersection.
        c = Rect([5.0, -3.3], [6.0, -3.1])
        assert not intersects_circular(a, c, mask)

    def test_none_mask_is_plain_intersection(self):
        a = Rect([3.0], [3.5])
        b = Rect([-3.3], [-3.1])
        assert not intersects_circular(a, b, None)

    @settings(max_examples=200, deadline=None)
    @given(
        lo_a=st.floats(-10, 10),
        w_a=st.floats(0, 3),
        lo_b=st.floats(-10, 10),
        w_b=st.floats(0, 3),
    )
    def test_agrees_with_sampled_membership(self, lo_a, w_a, lo_b, w_b):
        """Circular intersection agrees with dense sampling of the circle."""
        a = Rect([lo_a], [lo_a + w_a])
        b = Rect([lo_b], [lo_b + w_b])
        mask = np.array([True])
        got = intersects_circular(a, b, mask)
        theta = np.linspace(0, TWO_PI, 2000, endpoint=False)

        def member(lo, hi, t):
            if hi - lo >= TWO_PI:
                return np.ones_like(t, dtype=bool)
            lo_m, hi_m = lo % TWO_PI, hi % TWO_PI
            if lo_m <= hi_m:
                return (t >= lo_m) & (t <= hi_m)
            return (t >= lo_m) | (t <= hi_m)

        sampled = bool(np.any(member(lo_a, lo_a + w_a, theta) & member(lo_b, lo_b + w_b, theta)))
        # Sampling can only miss very thin overlaps, never invent them.
        if sampled:
            assert got
        if not got:
            assert not sampled
