"""Hypothesis property tests on the R-tree core invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.rtree.bulk import str_pack
from repro.rtree.geometry import Rect
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.rstar import RStarTree
from repro.rtree.search import nearest_neighbors
from repro.rtree.transformed import TransformedIndexView

coords = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)
points2d = st.lists(st.tuples(coords, coords), min_size=1, max_size=120)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(pts=points2d, lo=st.tuples(coords, coords), hi=st.tuples(coords, coords))
def test_range_search_equals_brute_force(pts, lo, hi):
    """For arbitrary points and query boxes, tree results == linear scan."""
    arr = np.array(pts, dtype=np.float64)
    tree = RStarTree(2, max_entries=6)
    for i, p in enumerate(arr):
        tree.insert_point(p, i)
    qlo = np.minimum(lo, hi).astype(np.float64)
    qhi = np.maximum(lo, hi).astype(np.float64)
    got = sorted(e.child for e in tree.search(Rect(qlo, qhi)))
    want = sorted(
        i for i, p in enumerate(arr) if np.all(p >= qlo) and np.all(p <= qhi)
    )
    assert got == want


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    pts=points2d,
    deletions=st.lists(st.integers(min_value=0, max_value=119), max_size=60),
)
def test_insert_delete_interleaving_keeps_invariants(pts, deletions):
    """Arbitrary delete subsets leave a structurally valid tree holding
    exactly the surviving records."""
    arr = np.array(pts, dtype=np.float64)
    tree = GuttmanRTree(2, max_entries=6)
    for i, p in enumerate(arr):
        tree.insert_point(p, i)
    alive = set(range(len(arr)))
    for d in deletions:
        if d in alive:
            assert tree.delete_point(arr[d], d)
            alive.discard(d)
    tree.validate()
    assert len(tree) == len(alive)
    everything = Rect(np.full(2, -1e5), np.full(2, 1e5))
    assert sorted(e.child for e in tree.search(everything)) == sorted(alive)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(pts=points2d, q=st.tuples(coords, coords), k=st.integers(1, 10))
def test_knn_equals_brute_force(pts, q, k):
    arr = np.array(pts, dtype=np.float64)
    tree = str_pack(arr, max_entries=6)
    got = nearest_neighbors(TransformedIndexView(tree), np.array(q), k=k)
    want_d = np.sort(np.linalg.norm(arr - np.array(q), axis=1))[: min(k, len(arr))]
    assert np.allclose([d for d, _ in got], want_d)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(pts=points2d)
def test_bulk_load_always_valid(pts):
    arr = np.array(pts, dtype=np.float64)
    tree = str_pack(arr, max_entries=5)
    tree.validate()
    assert sorted(e.child for e in tree) == list(range(len(arr)))


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    pts=points2d,
    scale=st.tuples(st.floats(-3, 3), st.floats(-3, 3)),
    offset=st.tuples(st.floats(-10, 10), st.floats(-10, 10)),
    lo=st.tuples(coords, coords),
    hi=st.tuples(coords, coords),
)
def test_transformed_view_equals_transform_then_scan(pts, scale, offset, lo, hi):
    """Algorithm 1 property: searching T(I) == filtering T(points) directly."""
    from repro.rtree.transformed import AffineMap

    arr = np.array(pts, dtype=np.float64)
    tree = str_pack(arr, max_entries=6)
    amap = AffineMap(np.array(scale), np.array(offset))
    view = TransformedIndexView(tree, amap)
    qlo = np.minimum(lo, hi).astype(np.float64)
    qhi = np.maximum(lo, hi).astype(np.float64)
    got = sorted(e.child for e in view.search(Rect(qlo, qhi)))
    mapped = arr * amap.scale + amap.offset
    want = sorted(
        i
        for i, p in enumerate(mapped)
        if np.all(p >= qlo) and np.all(p <= qhi)
    )
    assert got == want
