"""Tests for k-NN search, spatial joins, bulk loading and transformed views."""

import numpy as np
import pytest

from repro.rtree.bulk import str_pack
from repro.rtree.geometry import Rect
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.join import (
    index_nested_loop_join,
    tree_matching_join,
    tree_matching_join_pairs,
)
from repro.rtree.kernel import frozen_kernel
from repro.rtree.node import PagedNodeStore
from repro.rtree.rstar import RStarTree
from repro.rtree.search import (
    depth_first_nearest,
    incremental_nearest,
    nearest_neighbors,
)
from repro.rtree.transformed import AffineMap, TransformedIndexView


@pytest.fixture
def pts(rng):
    return rng.uniform(-50, 50, size=(600, 3))


@pytest.fixture
def tree(pts):
    t = RStarTree(3, max_entries=10)
    for i, p in enumerate(pts):
        t.insert_point(p, i)
    return t


class TestNearestNeighbors:
    @pytest.mark.parametrize("k", [1, 3, 10, 50])
    def test_best_first_matches_brute_force(self, pts, tree, rng, k):
        q = rng.uniform(-50, 50, size=3)
        got = nearest_neighbors(TransformedIndexView(tree), q, k=k)
        want = np.argsort(np.linalg.norm(pts - q, axis=1))[:k]
        assert [e.child for _, e in got] == list(want)

    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_depth_first_matches_best_first(self, pts, tree, rng, k):
        q = rng.uniform(-50, 50, size=3)
        bf = nearest_neighbors(TransformedIndexView(tree), q, k=k)
        df = depth_first_nearest(TransformedIndexView(tree), q, k=k)
        assert [e.child for _, e in bf] == [e.child for _, e in df]
        assert np.allclose([d for d, _ in bf], [d for d, _ in df])

    def test_distances_are_nondecreasing(self, tree, rng):
        q = rng.uniform(-50, 50, size=3)
        stream = incremental_nearest(TransformedIndexView(tree), q)
        dists = [d for d, _ in (next(stream) for _ in range(100))]
        assert dists == sorted(dists)

    def test_k_larger_than_tree(self, tree):
        got = nearest_neighbors(TransformedIndexView(tree), np.zeros(3), k=10_000)
        assert len(got) == 600

    def test_invalid_k_rejected(self, tree):
        with pytest.raises(ValueError):
            nearest_neighbors(TransformedIndexView(tree), np.zeros(3), k=0)
        with pytest.raises(ValueError):
            depth_first_nearest(TransformedIndexView(tree), np.zeros(3), k=-1)

    def test_nn_under_transformation(self, pts, tree, rng):
        amap = AffineMap([2.0, -1.0, 0.5], [10.0, 0.0, -3.0])
        view = TransformedIndexView(tree, amap)
        q = rng.uniform(-50, 50, size=3)
        got = nearest_neighbors(view, q, k=5)
        tp = pts * amap.scale + amap.offset
        want = np.argsort(np.linalg.norm(tp - q, axis=1))[:5]
        assert [e.child for _, e in got] == list(want)


class TestBulkLoad:
    @pytest.mark.parametrize("n", [0, 1, 7, 33, 500, 2111])
    def test_pack_valid_and_complete(self, rng, n):
        pts = rng.uniform(0, 10, size=(n, 4))
        tree = str_pack(pts, max_entries=12)
        tree.validate()
        assert len(tree) == n
        assert sorted(e.child for e in tree) == list(range(n))

    def test_pack_with_custom_ids(self, rng):
        pts = rng.uniform(0, 10, size=(50, 2))
        ids = np.arange(100, 150)
        tree = str_pack(pts, record_ids=ids, max_entries=8)
        assert sorted(e.child for e in tree) == list(ids)

    def test_pack_searches_equal_inserted_tree(self, rng):
        pts = rng.uniform(0, 100, size=(800, 3))
        packed = str_pack(pts, max_entries=16)
        inserted = RStarTree(3, max_entries=16)
        for i, p in enumerate(pts):
            inserted.insert_point(p, i)
        q = Rect(np.full(3, 20.0), np.full(3, 70.0))
        assert sorted(e.child for e in packed.search(q)) == sorted(
            e.child for e in inserted.search(q)
        )

    def test_pack_into_paged_store(self, rng):
        pts = rng.uniform(0, 100, size=(700, 5))
        store = PagedNodeStore(5, buffer_capacity=16)
        tree = str_pack(pts, store=store, max_entries=32)
        tree.validate()
        assert len(tree) == 700

    def test_pack_guttman_class(self, rng):
        pts = rng.uniform(0, 100, size=(300, 2))
        tree = str_pack(pts, max_entries=8, tree_cls=GuttmanRTree)
        assert isinstance(tree, GuttmanRTree)
        tree.validate()

    def test_packed_tree_is_compact(self, rng):
        pts = rng.uniform(0, 100, size=(1000, 2))
        packed = str_pack(pts, max_entries=10)
        inserted = RStarTree(2, max_entries=10)
        for i, p in enumerate(pts):
            inserted.insert_point(p, i)
        assert packed.node_count() <= inserted.node_count()

    def test_mismatched_ids_rejected(self, rng):
        with pytest.raises(ValueError):
            str_pack(rng.uniform(0, 1, (5, 2)), record_ids=[1, 2])

    def test_non_2d_points_rejected(self):
        with pytest.raises(ValueError):
            str_pack(np.zeros(5))


class TestAffineMap:
    def test_identity(self):
        m = AffineMap.identity(3)
        assert m.is_identity()
        p = np.array([1.0, -2.0, 3.0])
        assert np.array_equal(m.apply_point(p), p)

    def test_negative_scale_flips_intervals(self):
        m = AffineMap([-1.0], [0.0])
        r = m.apply_rect(Rect([1.0], [2.0]))
        assert r == Rect([-2.0], [-1.0])

    def test_compose(self):
        inner = AffineMap([2.0], [1.0])
        outer = AffineMap([3.0], [-1.0])
        both = outer.compose(inner)
        x = np.array([5.0])
        assert np.allclose(both.apply_point(x), outer.apply_point(inner.apply_point(x)))

    def test_inverse_roundtrip(self):
        m = AffineMap([2.0, -0.5], [3.0, 1.0])
        inv = m.inverse()
        p = np.array([7.0, -2.0])
        assert np.allclose(inv.apply_point(m.apply_point(p)), p)

    def test_zero_scale_not_invertible(self):
        with pytest.raises(ValueError):
            AffineMap([0.0], [1.0]).inverse()

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AffineMap([1.0], [0.0]).compose(AffineMap([1.0, 1.0], [0.0, 0.0]))

    def test_safety_on_rects(self, rng):
        """The affine image of a rect contains images of inside points and
        excludes images of outside points (Definition 1, via Theorem 1)."""
        m = AffineMap(rng.uniform(-3, 3, 4), rng.uniform(-5, 5, 4))
        lo = rng.uniform(-10, 0, 4)
        hi = lo + rng.uniform(0.1, 10, 4)
        rect = Rect(lo, hi)
        image = m.apply_rect(rect)
        for _ in range(50):
            inside = rng.uniform(lo, hi)
            assert image.contains_point(m.apply_point(inside))
        for _ in range(50):
            outside = rng.uniform(-20, 20, 4)
            if rect.contains_point(outside) or np.any(np.abs(m.scale) < 1e-12):
                continue
            if not rect.strictly_contains_point(outside) and not rect.contains_point(outside):
                # strictly outside the closed rect
                assert not image.strictly_contains_point(m.apply_point(outside))


class TestTransformedView:
    def test_identity_view_equals_tree_search(self, pts, tree):
        view = TransformedIndexView(tree)
        q = Rect(np.full(3, -10.0), np.full(3, 10.0))
        assert sorted(e.child for e in view.search(q)) == sorted(
            e.child for e in tree.search(q)
        )

    def test_same_node_accesses_as_plain_search(self, pts, rng):
        """Algorithm 1's headline property: the transformed traversal reads
        exactly as many nodes as the plain one (Figures 8-9 rationale)."""
        store = PagedNodeStore(3, buffer_capacity=0)
        t = RStarTree(3, store=store, max_entries=16)
        for i, p in enumerate(pts):
            t.insert_point(p, i)
        q = Rect(np.full(3, -10.0), np.full(3, 10.0))

        store.stats.reset()
        t.search(q)
        plain = store.stats.node_reads

        # A "volume-preserving" transformation keeps selectivity identical.
        amap = AffineMap(np.ones(3), np.full(3, 7.5))
        view = TransformedIndexView(t, amap)
        q_shifted = Rect(q.lows + 7.5, q.highs + 7.5)
        store.stats.reset()
        view.search(q_shifted)
        assert store.stats.node_reads == plain

    def test_view_iterates_transformed_points(self, pts, tree):
        amap = AffineMap([1.0, 2.0, 3.0], [0.0, -1.0, 0.5])
        view = TransformedIndexView(tree, amap)
        got = {e.child: e.rect.lows for e in view}
        for i, p in enumerate(pts):
            assert np.allclose(got[i], amap.apply_point(p))

    def test_root_mbr_transformed(self, tree):
        amap = AffineMap([2.0, 2.0, 2.0], [1.0, 1.0, 1.0])
        view = TransformedIndexView(tree, amap)
        plain = tree.root_mbr()
        assert view.root_mbr().approx_equal(amap.apply_rect(plain))

    def test_dim_mismatch_rejected(self, tree):
        with pytest.raises(ValueError):
            TransformedIndexView(tree, AffineMap([1.0], [0.0]))


class TestJoins:
    def test_nested_loop_self_join_matches_brute(self, rng):
        pts = rng.uniform(0, 20, size=(150, 2))
        tree = str_pack(pts, max_entries=8)
        view = TransformedIndexView(tree)
        eps = 1.5

        def search_rect(point_rect):
            return Rect(point_rect.lows - eps, point_rect.highs + eps)

        outer = ((i, Rect.from_point(p)) for i, p in enumerate(pts))
        got = sorted(index_nested_loop_join(outer, view, search_rect))
        want = sorted(
            (i, j)
            for i in range(150)
            for j in range(i + 1, 150)
            if np.all(np.abs(pts[i] - pts[j]) <= eps)
        )
        assert got == want

    def test_tree_matching_join_matches_nested_loop(self, rng):
        pts = rng.uniform(0, 20, size=(150, 2))
        tree = str_pack(pts, max_entries=8)
        view = TransformedIndexView(tree)
        eps = 1.5
        got = sorted(
            tree_matching_join(
                view,
                view,
                expand=lambda r: Rect(r.lows - eps, r.highs + eps),
                self_join=True,
            )
        )
        want = sorted(
            (i, j)
            for i in range(150)
            for j in range(i + 1, 150)
            if np.all(np.abs(pts[i] - pts[j]) <= eps)
        )
        assert got == want

    def test_join_of_two_distinct_trees(self, rng):
        a_pts = rng.uniform(0, 10, size=(60, 2))
        b_pts = rng.uniform(0, 10, size=(80, 2))
        view_a = TransformedIndexView(str_pack(a_pts, max_entries=8))
        view_b = TransformedIndexView(str_pack(b_pts, max_entries=8))
        eps = 0.8
        got = sorted(
            tree_matching_join(
                view_a,
                view_b,
                expand=lambda r: Rect(r.lows - eps, r.highs + eps),
            )
        )
        want = sorted(
            (i, j)
            for i in range(60)
            for j in range(80)
            if np.all(np.abs(a_pts[i] - b_pts[j]) <= eps)
        )
        assert got == want

    def test_join_with_empty_tree(self, rng):
        a = TransformedIndexView(str_pack(rng.uniform(0, 1, (10, 2)), max_entries=8))
        b = TransformedIndexView(str_pack(np.empty((0, 2)), max_entries=8))
        got = list(
            tree_matching_join(a, b, expand=lambda r: Rect(r.lows - 1, r.highs + 1))
        )
        assert got == []


class TestTreeMatchingJoinPairs:
    """The kernel frontier-pair form against the recursive reference."""

    @staticmethod
    def _kernel_view(tree, mapping=None):
        return TransformedIndexView(tree, mapping, kernel=frozen_kernel(tree))

    def test_self_join_matches_recursive(self, rng):
        pts = rng.uniform(0, 20, size=(150, 2))
        tree = str_pack(pts, max_entries=8)
        view = self._kernel_view(tree)
        eps = 1.5
        ii, jj = tree_matching_join_pairs(
            view, view,
            expand_many=lambda lo, hi: (lo - eps, hi + eps),
            self_join=True,
        )
        got = sorted(zip(ii.tolist(), jj.tolist()))
        want = sorted(
            tree_matching_join(
                view, view,
                expand=lambda r: Rect(r.lows - eps, r.highs + eps),
                self_join=True,
            )
        )
        assert got == want

    def test_two_distinct_trees_match_recursive(self, rng):
        a_pts = rng.uniform(0, 10, size=(60, 2))
        b_pts = rng.uniform(0, 10, size=(80, 2))
        view_a = self._kernel_view(str_pack(a_pts, max_entries=8))
        view_b = self._kernel_view(str_pack(b_pts, max_entries=8))
        eps = 0.8
        ii, jj = tree_matching_join_pairs(
            view_a, view_b, expand_many=lambda lo, hi: (lo - eps, hi + eps)
        )
        got = sorted(zip(ii.tolist(), jj.tolist()))
        want = sorted(
            tree_matching_join(
                view_a, view_b,
                expand=lambda r: Rect(r.lows - eps, r.highs + eps),
            )
        )
        assert got == want

    def test_affine_views_match_recursive(self, rng):
        pts = rng.uniform(-5, 5, size=(100, 2))
        tree = str_pack(pts, max_entries=8)
        mapping = AffineMap([2.0, -1.5], [0.3, -0.7])
        view = self._kernel_view(tree, mapping)
        eps = 1.0
        ii, jj = tree_matching_join_pairs(
            view, view,
            expand_many=lambda lo, hi: (lo - eps, hi + eps),
            self_join=True,
        )
        got = sorted(zip(ii.tolist(), jj.tolist()))
        want = sorted(
            tree_matching_join(
                view, view,
                expand=lambda r: Rect(r.lows - eps, r.highs + eps),
                self_join=True,
            )
        )
        assert got == want

    def test_requires_kernels(self, rng):
        view = TransformedIndexView(str_pack(rng.uniform(0, 1, (10, 2))))
        view.kernel = None
        with pytest.raises(ValueError):
            tree_matching_join_pairs(
                view, view, expand_many=lambda lo, hi: (lo - 1, hi + 1)
            )

    def test_empty_trees(self, rng):
        a = self._kernel_view(str_pack(rng.uniform(0, 1, (10, 2)), max_entries=8))
        b = self._kernel_view(str_pack(np.empty((0, 2)), max_entries=8))
        ii, jj = tree_matching_join_pairs(
            a, b, expand_many=lambda lo, hi: (lo - 1, hi + 1)
        )
        assert ii.size == 0 and jj.size == 0
        ii, jj = tree_matching_join_pairs(
            b, a, expand_many=lambda lo, hi: (lo - 1, hi + 1)
        )
        assert ii.size == 0 and jj.size == 0
