"""Structural tests for the R*-tree and Guttman R-tree over both stores."""

import numpy as np
import pytest

from repro.rtree.base import RTreeError
from repro.rtree.geometry import Rect
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.node import MemoryNodeStore, PagedNodeStore
from repro.rtree.rstar import RStarTree
from tests.conftest import make_store

TREE_MAKERS = {
    "rstar": lambda dim, store: RStarTree(dim, store=store, max_entries=8),
    "rstar-noreinsert": lambda dim, store: RStarTree(
        dim, store=store, max_entries=8, reinsert_fraction=0.0
    ),
    "guttman-quadratic": lambda dim, store: GuttmanRTree(
        dim, store=store, max_entries=8, split="quadratic"
    ),
    "guttman-linear": lambda dim, store: GuttmanRTree(
        dim, store=store, max_entries=8, split="linear"
    ),
}


@pytest.fixture(params=sorted(TREE_MAKERS))
def tree_kind(request):
    return request.param


def build(tree_kind, store_kind, pts):
    tree = TREE_MAKERS[tree_kind](pts.shape[1], make_store(store_kind, pts.shape[1]))
    for i, p in enumerate(pts):
        tree.insert_point(p, i)
    return tree


def brute_range(pts, lo, hi):
    return sorted(
        i
        for i, p in enumerate(pts)
        if np.all(p >= lo) and np.all(p <= hi)
    )


class TestInsertSearch:
    def test_empty_tree_searches_cleanly(self, tree_kind, store_kind):
        tree = TREE_MAKERS[tree_kind](3, make_store(store_kind, 3))
        assert tree.search(Rect([0, 0, 0], [1, 1, 1])) == []
        assert len(tree) == 0
        assert tree.root_mbr() is None

    def test_single_point(self, tree_kind, store_kind):
        tree = TREE_MAKERS[tree_kind](2, make_store(store_kind, 2))
        tree.insert_point([1.0, 2.0], 42)
        hits = tree.search(Rect([0, 0], [3, 3]))
        assert [e.child for e in hits] == [42]
        tree.validate()

    def test_range_matches_brute_force(self, tree_kind, store_kind, rng):
        pts = rng.uniform(0, 100, size=(500, 3))
        tree = build(tree_kind, store_kind, pts)
        tree.validate()
        for lo_v, hi_v in [(10, 30), (0, 100), (50, 50.5), (90, 99)]:
            lo, hi = np.full(3, float(lo_v)), np.full(3, float(hi_v))
            got = sorted(e.child for e in tree.search(Rect(lo, hi)))
            assert got == brute_range(pts, lo, hi)

    def test_duplicate_points_all_found(self, tree_kind, store_kind):
        tree = TREE_MAKERS[tree_kind](2, make_store(store_kind, 2))
        for i in range(50):
            tree.insert_point([5.0, 5.0], i)
        hits = tree.search(Rect([5, 5], [5, 5]))
        assert sorted(e.child for e in hits) == list(range(50))
        tree.validate()

    def test_iteration_yields_every_entry(self, tree_kind, store_kind, rng):
        pts = rng.uniform(0, 10, size=(120, 2))
        tree = build(tree_kind, store_kind, pts)
        assert sorted(e.child for e in tree) == list(range(120))

    def test_height_grows(self, tree_kind, store_kind, rng):
        pts = rng.uniform(0, 10, size=(200, 2))
        tree = build(tree_kind, store_kind, pts)
        assert tree.height >= 2
        assert len(tree) == 200

    def test_rect_entries_supported(self, tree_kind, store_kind):
        tree = TREE_MAKERS[tree_kind](2, make_store(store_kind, 2))
        for i in range(30):
            lo = np.array([float(i), float(i)])
            tree.insert(Rect(lo, lo + 2.0), i)
        tree.validate()
        hits = tree.search(Rect([10.5, 10.5], [11.0, 11.0]))
        # Rectangles are closed: entry 11 = [11,13]^2 touches at (11,11).
        assert sorted(e.child for e in hits) == [9, 10, 11]

    def test_dimension_mismatch_rejected(self, tree_kind, store_kind):
        tree = TREE_MAKERS[tree_kind](2, make_store(store_kind, 2))
        with pytest.raises(RTreeError):
            tree.insert_point([1.0, 2.0, 3.0], 0)


class TestDelete:
    def test_delete_returns_false_for_missing(self, tree_kind, store_kind):
        tree = TREE_MAKERS[tree_kind](2, make_store(store_kind, 2))
        tree.insert_point([1.0, 1.0], 0)
        assert not tree.delete_point([1.0, 1.0], 999)
        assert not tree.delete_point([2.0, 2.0], 0)

    def test_delete_then_search(self, tree_kind, store_kind, rng):
        pts = rng.uniform(0, 100, size=(300, 3))
        tree = build(tree_kind, store_kind, pts)
        for i in range(0, 300, 2):
            assert tree.delete_point(pts[i], i)
        tree.validate()
        assert len(tree) == 150
        got = sorted(e.child for e in tree.search(Rect(np.zeros(3), np.full(3, 100.0))))
        assert got == list(range(1, 300, 2))

    def test_delete_everything(self, tree_kind, store_kind, rng):
        pts = rng.uniform(0, 10, size=(100, 2))
        tree = build(tree_kind, store_kind, pts)
        for i in range(100):
            assert tree.delete_point(pts[i], i)
        assert len(tree) == 0
        tree.validate()
        assert tree.search(Rect([0, 0], [10, 10])) == []

    def test_reinsert_after_full_delete(self, tree_kind, store_kind, rng):
        pts = rng.uniform(0, 10, size=(80, 2))
        tree = build(tree_kind, store_kind, pts)
        for i in range(80):
            tree.delete_point(pts[i], i)
        for i, p in enumerate(pts):
            tree.insert_point(p, 1000 + i)
        tree.validate()
        assert len(tree) == 80

    def test_root_shrinks_after_mass_delete(self, tree_kind, store_kind, rng):
        pts = rng.uniform(0, 10, size=(400, 2))
        tree = build(tree_kind, store_kind, pts)
        height_full = tree.height
        for i in range(390):
            tree.delete_point(pts[i], i)
        tree.validate()
        assert tree.height <= height_full
        got = sorted(e.child for e in tree.search(Rect([0, 0], [10, 10])))
        assert got == list(range(390, 400))


class TestConstructorValidation:
    def test_bad_dim(self):
        with pytest.raises(RTreeError):
            RStarTree(0)

    def test_bad_min_fill(self):
        with pytest.raises(RTreeError):
            RStarTree(2, min_fill=0.9)

    def test_bad_max_entries(self):
        with pytest.raises(RTreeError):
            RStarTree(2, max_entries=2)

    def test_bad_split_name(self):
        with pytest.raises(RTreeError):
            GuttmanRTree(2, split="foo")

    def test_bad_reinsert_fraction(self):
        with pytest.raises(ValueError):
            RStarTree(2, reinsert_fraction=1.5)

    def test_paged_store_caps_fanout(self):
        store = PagedNodeStore(dim=6)
        tree = RStarTree(6, store=store, max_entries=10_000)
        assert tree.max_entries == store.max_entries - 1


class TestStoreEquivalence:
    def test_memory_and_paged_trees_answer_identically(self, rng):
        pts = rng.uniform(0, 100, size=(400, 4))
        mem = RStarTree(4, store=MemoryNodeStore(), max_entries=16)
        paged = RStarTree(4, store=PagedNodeStore(4, buffer_capacity=8), max_entries=16)
        for i, p in enumerate(pts):
            mem.insert_point(p, i)
            paged.insert_point(p, i)
        q = Rect(np.full(4, 25.0), np.full(4, 60.0))
        assert sorted(e.child for e in mem.search(q)) == sorted(
            e.child for e in paged.search(q)
        )

    def test_tiny_buffer_forces_disk_io(self, rng):
        pts = rng.uniform(0, 100, size=(500, 4))
        store = PagedNodeStore(4, buffer_capacity=2)
        tree = RStarTree(4, store=store, max_entries=16)
        for i, p in enumerate(pts):
            tree.insert_point(p, i)
        store.stats.reset()
        tree.search(Rect(np.zeros(4), np.full(4, 100.0)))
        assert store.stats.page_reads > 0


class TestRStarPolicies:
    def test_forced_reinsert_reduces_node_count(self, rng):
        """With reinsertion on, the R*-tree should be at least as compact."""
        pts = rng.uniform(0, 100, size=(1500, 2))
        with_r = RStarTree(2, max_entries=8, reinsert_fraction=0.3)
        without = RStarTree(2, max_entries=8, reinsert_fraction=0.0)
        for i, p in enumerate(pts):
            with_r.insert_point(p, i)
            without.insert_point(p, i)
        with_r.validate()
        without.validate()
        assert with_r.node_count() <= without.node_count() * 1.1

    def test_split_respects_min_fill(self, rng):
        tree = RStarTree(2, max_entries=10, min_fill=0.4)
        pts = rng.uniform(0, 100, size=(600, 2))
        for i, p in enumerate(pts):
            tree.insert_point(p, i)
        tree.validate()  # validate() itself asserts min-fill on every node
