"""Tests for the tuned sequential-scan baselines."""

import numpy as np
import pytest

from repro.core.engine import SimilarityEngine
from repro.core.transforms import moving_average, reverse
from repro.data import SequenceRelation
from repro.data.synthetic import random_walks
from repro.scan import scan_knn, scan_range
from repro.storage.stats import IOStats


@pytest.fixture(scope="module")
def engine():
    rel = SequenceRelation.from_matrix(random_walks(120, 64, seed=77))
    return SimilarityEngine(rel)


class TestScanRange:
    @pytest.mark.parametrize("early", [True, False])
    @pytest.mark.parametrize("use_t", [False, True])
    def test_matches_index_answers(self, engine, early, use_t):
        """Index and scan must return exactly the same answer set."""
        t = moving_average(64, 10) if use_t else None
        q = engine.relation.get(5)
        via_index = engine.range_query(q, 4.0, transformation=t)
        via_scan = scan_range(
            engine.ground_spectra,
            engine.query_spectrum(q),
            4.0,
            transformation=t,
            early_abandon=early,
        )
        assert [(r, round(d, 8)) for r, d in via_index] == [
            (r, round(d, 8)) for r, d in via_scan
        ]

    def test_counts_all_records_as_computations(self, engine):
        stats = IOStats()
        scan_range(
            engine.ground_spectra,
            engine.query_spectrum(engine.relation.get(0)),
            1.0,
            stats=stats,
        )
        assert stats.distance_computations == len(engine.relation)

    def test_empty_answer(self, engine):
        got = scan_range(
            engine.ground_spectra,
            engine.query_spectrum(engine.relation.get(0)) + 1e6,
            0.5,
        )
        assert got == []


class TestScanKnn:
    @pytest.mark.parametrize("k", [1, 4, 20])
    def test_matches_engine_knn(self, engine, k):
        q = engine.relation.get(33)
        a = engine.knn_query(q, k)
        b = scan_knn(engine.ground_spectra, engine.query_spectrum(q), k)
        assert np.allclose([d for _, d in a], [d for _, d in b], atol=1e-9)

    def test_with_transformation(self, engine):
        t = reverse(64)
        q = engine.relation.get(10)
        a = engine.knn_query(q, 5, transformation=t)
        b = scan_knn(engine.ground_spectra, engine.query_spectrum(q), 5, transformation=t)
        assert np.allclose([d for _, d in a], [d for _, d in b], atol=1e-9)

    def test_invalid_k(self, engine):
        with pytest.raises(ValueError):
            scan_knn(engine.ground_spectra, engine.ground_spectra[0], -1)

    def test_k_zero_returns_empty(self, engine):
        assert scan_knn(engine.ground_spectra, engine.ground_spectra[0], 0) == []

    def test_k_larger_than_relation(self, engine):
        got = scan_knn(engine.ground_spectra, engine.query_spectrum(engine.relation.get(0)), 10_000)
        assert len(got) == len(engine.relation)
