"""Tests for distances and the Eq. 10 closure dissimilarity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.similarity import (
    TransformationClosureDistance,
    cityblock,
    euclidean,
    euclidean_early_abandon,
)
from repro.core.transforms import identity, moving_average, reverse, scale, shift

vec = st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=4, max_size=24)


class TestBasicDistances:
    def test_euclidean_known(self):
        assert euclidean([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_cityblock_known(self):
        assert cityblock([0.0, 0.0], [3.0, 4.0]) == pytest.approx(7.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            euclidean([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            cityblock([1.0], [1.0, 2.0])

    @settings(max_examples=50, deadline=None)
    @given(vec)
    def test_self_distance_zero(self, x):
        assert euclidean(x, x) == 0.0
        assert cityblock(x, x) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(vec, vec, vec)
    def test_triangle_inequality(self, a, b, c):
        n = min(len(a), len(b), len(c))
        a, b, c = a[:n], b[:n], c[:n]
        assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-6


class TestEarlyAbandon:
    @settings(max_examples=60, deadline=None)
    @given(vec, vec, st.floats(0.0, 100.0))
    def test_agrees_with_exact(self, a, b, eps):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        exact = euclidean(a, b)
        got = euclidean_early_abandon(a, b, eps)
        if exact <= eps:
            assert got == pytest.approx(exact, rel=1e-9)
        else:
            assert got is None

    def test_abandons_immediately_on_first_block(self):
        a = np.zeros(100)
        b = np.concatenate([[100.0], np.zeros(99)])
        assert euclidean_early_abandon(a, b, 1.0, block=1) is None

    def test_infinite_eps_returns_exact(self, rng):
        a, b = rng.normal(size=50), rng.normal(size=50)
        got = euclidean_early_abandon(a, b, float("inf"))
        assert got == pytest.approx(euclidean(a, b))

    def test_complex_inputs(self, rng):
        a = rng.normal(size=20) + 1j * rng.normal(size=20)
        b = rng.normal(size=20) + 1j * rng.normal(size=20)
        exact = float(np.linalg.norm(a - b))
        got = euclidean_early_abandon(a, b, exact + 1.0)
        assert got == pytest.approx(exact)

    def test_validation(self):
        with pytest.raises(ValueError):
            euclidean_early_abandon([1.0], [1.0], -1.0)
        with pytest.raises(ValueError):
            euclidean_early_abandon([1.0], [1.0, 2.0], 1.0)


class TestClosureDistance:
    def test_no_transformations_is_euclidean(self, rng):
        x, y = rng.normal(size=16), rng.normal(size=16)
        d = TransformationClosureDistance([], max_steps=0)
        assert d(x, y) == pytest.approx(euclidean(x, y))

    def test_identity_changes_nothing(self, rng):
        x, y = rng.normal(size=16), rng.normal(size=16)
        d = TransformationClosureDistance([identity(16)], max_steps=2)
        assert d(x, y) == pytest.approx(euclidean(x, y))

    def test_shift_closes_offset_gap(self, rng):
        """x and x+5 become identical under a free shift."""
        x = rng.normal(size=16)
        d = TransformationClosureDistance([shift(16, 5.0)], max_steps=1)
        assert d(x, x + 5.0) == pytest.approx(0.0, abs=1e-7)

    def test_reverse_matches_mirrored_series(self, rng):
        x = rng.normal(size=16)
        d = TransformationClosureDistance([reverse(16)], max_steps=1)
        assert d(x, -x) == pytest.approx(0.0, abs=1e-7)

    def test_cost_is_charged(self, rng):
        x = rng.normal(size=16)
        t = shift(16, 5.0, cost=1.0)
        d = TransformationClosureDistance([t], max_steps=1)
        # Either pay 1.0 to transform, or the raw distance; min of both.
        raw = euclidean(x, x + 5.0)
        assert d(x, x + 5.0) == pytest.approx(min(1.0, raw))

    def test_budget_blocks_expensive_plans(self, rng):
        x = rng.normal(size=16)
        t = shift(16, 5.0, cost=10.0)
        d = TransformationClosureDistance([t], budget=5.0, max_steps=1)
        assert d(x, x + 5.0) == pytest.approx(euclidean(x, x + 5.0))

    def test_never_exceeds_euclidean(self, rng):
        """Eq. 10 takes a min including D0, so it's bounded by it."""
        x, y = rng.normal(size=16), rng.normal(size=16)
        d = TransformationClosureDistance(
            [moving_average(16, 3, cost=0.1), reverse(16, cost=0.1)], max_steps=2
        )
        assert d(x, y) <= euclidean(x, y) + 1e-9

    def test_both_sides_transformed(self, rng):
        """Matching requires transforming x AND y (scale each by 2)."""
        base = rng.normal(size=16)
        x, y = base.copy(), base.copy()
        t = scale(16, 2.0)
        # 2*x vs 2*y identical; but also raw x == y, so craft asymmetry:
        x = base
        y = 2.0 * base
        d = TransformationClosureDistance([t], max_steps=1)
        # Transforming x by 2 gives 2*base == y exactly.
        assert d(x, y) == pytest.approx(0.0, abs=1e-7)

    def test_max_steps_zero_means_no_transforms(self, rng):
        x = rng.normal(size=16)
        d = TransformationClosureDistance([shift(16, 1.0)], max_steps=0)
        assert d(x, x + 1.0) == pytest.approx(euclidean(x, x + 1.0))

    def test_repeated_smoothing_bounded_by_steps(self, rng):
        """Example 2.3's point: dissimilar trends stay apart when the
        number of smoothing applications is bounded."""
        rng2 = np.random.default_rng(5)
        x = np.cumsum(rng2.normal(size=32))
        y = -np.cumsum(rng2.normal(size=32))  # different trend
        t = moving_average(32, 5)
        d = TransformationClosureDistance([t], max_steps=2)
        assert d(x, y) > 0.5

    def test_explain_reports_chain(self, rng):
        x = rng.normal(size=16)
        t = shift(16, 5.0)
        d = TransformationClosureDistance([t], max_steps=1)
        info = d.explain(x, x + 5.0)
        assert info["distance"] == pytest.approx(0.0, abs=1e-7)
        assert info["x_chain"] == ["shift(5)"] or info["y_chain"] == ["shift(5)"]

    def test_validation(self):
        with pytest.raises(ValueError):
            TransformationClosureDistance([], max_steps=-1)
        with pytest.raises(ValueError):
            TransformationClosureDistance([], budget=-1.0)

    def test_spectra_entry_point(self, rng):
        from repro.dft import dft

        x, y = rng.normal(size=16), rng.normal(size=16)
        d = TransformationClosureDistance([reverse(16)], max_steps=1)
        assert d.distance_spectra(dft(x), dft(y)) == pytest.approx(d(x, y))

    def test_spectra_length_mismatch(self):
        d = TransformationClosureDistance([])
        with pytest.raises(ValueError):
            d.distance_spectra(np.zeros(4, complex), np.zeros(5, complex))


class TestClosureDistanceProperties:
    def test_symmetry(self, rng):
        """Eq. 10 is symmetric: transformations may hit either side."""
        from repro.core.transforms import moving_average, scale, shift

        ts = [shift(16, 2.0, cost=0.5), scale(16, 2.0, cost=0.5),
              moving_average(16, 3, cost=0.5)]
        d = TransformationClosureDistance(ts, max_steps=1)
        for seed in range(5):
            r = np.random.default_rng(seed)
            x, y = r.normal(size=16), r.normal(size=16)
            assert d(x, y) == pytest.approx(d(y, x), abs=1e-8)

    def test_monotone_in_budget(self, rng):
        """A larger budget can only reduce the dissimilarity."""
        from repro.core.transforms import shift

        x = rng.normal(size=16)
        y = x + 5.0
        t = shift(16, 5.0, cost=3.0)
        tight = TransformationClosureDistance([t], budget=1.0, max_steps=1)
        loose = TransformationClosureDistance([t], budget=10.0, max_steps=1)
        assert loose(x, y) <= tight(x, y) + 1e-12

    def test_monotone_in_steps(self, rng):
        from repro.core.transforms import moving_average

        x, y = rng.normal(size=16), rng.normal(size=16)
        t = moving_average(16, 3)
        d1 = TransformationClosureDistance([t], max_steps=1)
        d3 = TransformationClosureDistance([t], max_steps=3)
        assert d3(x, y) <= d1(x, y) + 1e-12
