"""Tests for the stats counters and the sequence relation container."""

import numpy as np
import pytest

from repro.data.relation import SequenceRelation
from repro.data.synthetic import random_walk_relation, random_walks
from repro.dft import dft
from repro.storage.stats import IOStats


class TestIOStats:
    def test_reset_zeroes_everything(self):
        s = IOStats()
        s.page_reads = 5
        s.bump("custom", 3)
        s.reset()
        assert s.page_reads == 0
        assert s.extra == {}

    def test_disk_accesses_sum(self):
        s = IOStats(page_reads=3, page_writes=4)
        assert s.disk_accesses == 7

    def test_logical_reads(self):
        s = IOStats(page_reads=2, buffer_hits=10)
        assert s.logical_reads == 12

    def test_bump_accumulates(self):
        s = IOStats()
        s.bump("splits")
        s.bump("splits", 2)
        assert s.extra["splits"] == 3

    def test_snapshot_contains_extras(self):
        s = IOStats()
        s.bump("joins", 7)
        snap = s.snapshot()
        assert snap["joins"] == 7
        assert "disk_accesses" in snap

    def test_subtraction_of_snapshots(self):
        s = IOStats()
        before = IOStats(**{k: v for k, v in s.snapshot().items() if k in (
            "page_reads", "page_writes", "buffer_hits", "node_reads",
            "node_writes", "distance_computations", "candidate_count")})
        s.page_reads = 9
        diff = s - before
        assert diff["page_reads"] == 9


class TestSequenceRelation:
    def test_add_and_get(self):
        rel = SequenceRelation(4)
        rid = rel.add([1.0, 2.0, 3.0, 4.0], name="a")
        assert rid == 0
        assert np.array_equal(rel.get(0), [1, 2, 3, 4])
        assert rel.name(0) == "a"

    def test_default_names(self):
        rel = SequenceRelation(3)
        rel.add([1.0, 2.0, 3.0])
        assert rel.name(0) == "seq0"

    def test_attrs_stored(self):
        rel = SequenceRelation(3)
        rel.add([1.0, 2.0, 3.0], sector="TECH", beta=1.2)
        assert rel.attrs(0) == {"sector": "TECH", "beta": 1.2}

    def test_id_of(self):
        rel = SequenceRelation(2)
        rel.add([1.0, 2.0], name="x")
        rel.add([3.0, 4.0], name="y")
        assert rel.id_of("y") == 1
        with pytest.raises(KeyError):
            rel.id_of("z")

    def test_wrong_length_rejected(self):
        rel = SequenceRelation(4)
        with pytest.raises(ValueError):
            rel.add([1.0, 2.0])

    def test_bad_id_rejected(self):
        rel = SequenceRelation(4)
        with pytest.raises(KeyError):
            rel.get(0)

    def test_matrix_and_spectra_consistent(self):
        rel = SequenceRelation.from_matrix(random_walks(5, 16, seed=2))
        assert rel.matrix.shape == (5, 16)
        for rid in range(5):
            assert np.allclose(rel.spectrum(rid), dft(rel.get(rid)))

    def test_caches_invalidate_on_add(self):
        rel = SequenceRelation.from_matrix(random_walks(3, 8, seed=2))
        _ = rel.spectra
        rel.add(np.arange(8, dtype=float))
        assert rel.spectra.shape == (4, 8)
        assert rel.matrix.shape == (4, 8)

    def test_subset_renumbers(self):
        rel = SequenceRelation.from_matrix(random_walks(6, 8, seed=3))
        sub = rel.subset([4, 1])
        assert len(sub) == 2
        assert np.array_equal(sub.get(0), rel.get(4))
        assert np.array_equal(sub.get(1), rel.get(1))

    def test_iteration(self):
        rel = SequenceRelation.from_matrix(random_walks(4, 8, seed=1))
        ids = [rid for rid, _ in rel]
        assert ids == [0, 1, 2, 3]

    def test_add_copies_input(self):
        rel = SequenceRelation(3)
        arr = np.array([1.0, 2.0, 3.0])
        rel.add(arr)
        arr[0] = 99.0
        assert rel.get(0)[0] == 1.0

    def test_empty_relation_properties(self):
        rel = SequenceRelation(8)
        assert len(rel) == 0
        assert rel.matrix.shape == (0, 8)
        assert rel.spectra.shape == (0, 8)

    def test_from_matrix_validation(self):
        with pytest.raises(ValueError):
            SequenceRelation.from_matrix(np.zeros(5))
        with pytest.raises(ValueError):
            SequenceRelation(1)


class TestSyntheticWalks:
    def test_shape_and_determinism(self):
        a = random_walks(10, 32, seed=5)
        b = random_walks(10, 32, seed=5)
        assert a.shape == (10, 32)
        assert np.array_equal(a, b)

    def test_start_range_respected(self):
        walks = random_walks(200, 8, seed=6)
        assert np.all(walks[:, 0] >= 20.0)
        assert np.all(walks[:, 0] <= 99.0)

    def test_step_bound_respected(self):
        walks = random_walks(100, 64, seed=7)
        steps = np.diff(walks, axis=1)
        assert np.all(np.abs(steps) <= 4.0)

    def test_relation_builder(self):
        rel = random_walk_relation(5, 16, seed=1)
        assert len(rel) == 5
        assert rel.name(0) == "walk0"

    def test_validation(self):
        with pytest.raises(ValueError):
            random_walks(-1, 8)
        with pytest.raises(ValueError):
            random_walks(5, 1)
