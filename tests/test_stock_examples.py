"""Qualitative reproduction of the Section 2 stock-analysis examples.

The original BBA/ZTR/CC/VAR/DMIC/MXF price data is gone (see DESIGN.md);
these tests check that the *shape* of each example — which transformation
chain shrinks which distances, and which does not — reproduces on the
synthetic market.
"""

import numpy as np
import pytest

from repro.core.normal_form import normal_form
from repro.core.similarity import euclidean
from repro.core.transforms import moving_average, reverse
from repro.data import make_stock_universe
from repro.data.stocks import paired_stocks


@pytest.fixture(scope="module")
def pair():
    return paired_stocks(length=128, seed=42)


class TestExample21Chain:
    """Example 2.1: original -> shifted -> scaled -> 20-day MA distances
    fall monotonically for a pair of related stocks."""

    def test_shift_reduces_distance(self, pair):
        base, corr, _ = pair
        d0 = euclidean(base, corr)
        d1 = euclidean(base - base.mean(), corr - corr.mean())
        assert d1 <= d0 + 1e-9

    def test_normal_form_changes_scale_sensitivity(self, pair):
        base, corr, _ = pair
        d1 = euclidean(base - base.mean(), corr - corr.mean())
        d2 = euclidean(normal_form(base), normal_form(corr))
        # For stocks trading at different price levels (12 vs 30), scaling
        # by std brings the shapes together.
        assert d2 <= d1

    def test_moving_average_smooths_residual_noise(self, pair):
        base, corr, _ = pair
        t = moving_average(128, 20)
        d2 = euclidean(normal_form(base), normal_form(corr))
        d3 = euclidean(
            t.apply_series(normal_form(base)), t.apply_series(normal_form(corr))
        )
        assert d3 < d2
        # Correlated stocks end up genuinely close, like BBA/ZTR's 2.75.
        assert d3 < 0.6 * d2


class TestExample22Inverse:
    """Example 2.2: reversing one series of an anti-correlated pair makes
    them similar; smoothing tightens it further."""

    def test_chain_of_distances(self, pair):
        base, _, inverse = pair
        nb, ni = normal_form(base), normal_form(inverse)
        d_norm = euclidean(nb, ni)
        d_reversed = euclidean(nb, -ni)
        assert d_reversed < d_norm
        t = moving_average(128, 20)
        d_final = euclidean(t.apply_series(nb), t.apply_series(-ni))
        assert d_final < d_reversed

    def test_trev_formulation_matches_manual_negation(self, pair):
        _, _, inverse = pair
        ni = normal_form(inverse)
        t = reverse(128)
        assert np.allclose(t.apply_series(ni), -ni, atol=1e-9)


class TestExample23Resistance:
    """Example 2.3: dissimilar trends stay apart under repeated smoothing."""

    def test_unrelated_stocks_resist_smoothing(self):
        rng = np.random.default_rng(11)
        # Two independent walks with opposite drifts: genuinely different.
        a = np.cumsum(rng.normal(0.3, 1.0, 128))
        b = np.cumsum(rng.normal(-0.3, 1.0, 128))
        na, nb = normal_form(a), normal_form(b)
        t = moving_average(128, 20)
        d = [euclidean(na, nb)]
        xa, xb = na, nb
        for _ in range(10):
            xa, xb = t.apply_series(xa), t.apply_series(xb)
            d.append(euclidean(xa, xb))
        # Distances may decline but remain substantial even after the 10th
        # moving average (paper: 11.06 -> 6.57 over ten applications).
        assert d[10] > 0.3 * d[0]
        assert d[10] > 1.0


class TestStockUniverse:
    def test_size_and_shape(self):
        rel = make_stock_universe(count=50, length=64, seed=1)
        assert len(rel) == 50
        assert rel.length == 64

    def test_prices_positive(self):
        rel = make_stock_universe(count=80, length=64, seed=2)
        assert np.all(rel.matrix > 0)

    def test_reproducible(self):
        a = make_stock_universe(count=20, length=32, seed=3)
        b = make_stock_universe(count=20, length=32, seed=3)
        assert np.array_equal(a.matrix, b.matrix)

    def test_different_seeds_differ(self):
        a = make_stock_universe(count=20, length=32, seed=3)
        b = make_stock_universe(count=20, length=32, seed=4)
        assert not np.array_equal(a.matrix, b.matrix)

    def test_funds_have_low_volatility(self):
        rel = make_stock_universe(count=100, length=128, seed=5)
        fund_stds, stock_stds = [], []
        for rid in range(len(rel)):
            series = rel.get(rid)
            rel_std = float(np.std(series) / np.mean(series))
            (fund_stds if rel.attrs(rid)["is_fund"] else stock_stds).append(rel_std)
        assert np.mean(fund_stds) < np.mean(stock_stds)

    def test_inverse_instruments_anticorrelate_with_market(self):
        rel = make_stock_universe(count=200, length=128, seed=6)
        # Average the normal forms of positive-beta stocks as a market proxy.
        pos = [
            normal_form(rel.get(rid))
            for rid in range(len(rel))
            if rel.attrs(rid)["beta"] > 0.5
        ]
        market = np.mean(pos, axis=0)
        neg_corr = [
            float(np.corrcoef(normal_form(rel.get(rid)), market)[0, 1])
            for rid in range(len(rel))
            if rel.attrs(rid)["beta"] < 0
        ]
        assert len(neg_corr) > 0
        assert np.mean(neg_corr) < -0.2

    def test_universe_contains_close_pairs_under_smoothing(self):
        """The Table-1 join premise: some pairs are close after mavg20."""
        rel = make_stock_universe(count=150, length=128, seed=7)
        t = moving_average(128, 20)
        nf = np.stack([t.apply_series(normal_form(rel.get(r))) for r in range(150)])
        close = 0
        for i in range(150):
            d = np.linalg.norm(nf - nf[i], axis=1)
            close += int(np.sum(d < 2.0)) - 1
        assert close > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            make_stock_universe(count=0)
        with pytest.raises(ValueError):
            make_stock_universe(length=1)
