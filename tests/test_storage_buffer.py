"""Unit tests for the LRU buffer pool."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.pager import PageFile


def make_pool(capacity=2):
    pf = PageFile()
    return pf, BufferPool(pf, capacity=capacity)


class TestCaching:
    def test_second_read_hits_buffer(self):
        pf, pool = make_pool()
        pid = pool.allocate()
        pool.read(pid)
        reads_before = pf.stats.page_reads
        pool.read(pid)
        assert pf.stats.page_reads == reads_before
        assert pf.stats.buffer_hits == 1

    def test_write_then_read_served_from_buffer(self):
        pf, pool = make_pool()
        pid = pool.allocate()
        pool.write(pid, b"cached")
        assert pool.read(pid)[:6] == b"cached"
        assert pf.stats.page_reads == 0  # never touched the "disk"

    def test_lru_eviction_order(self):
        pf, pool = make_pool(capacity=2)
        a, b, c = pool.allocate(), pool.allocate(), pool.allocate()
        pool.write(a, b"a")
        pool.write(b, b"b")
        pool.read(a)  # a becomes most-recent; b is the LRU victim
        pool.write(c, b"c")  # evicts b
        assert pool.resident_pages == 2
        pf.stats.reset()
        pool.read(b)  # miss
        assert pf.stats.page_reads == 1
        pool.read(a)  # a was evicted by reading b... capacity 2: a,c then b evicts a?
        # Regardless of which specific page remained, reads must be consistent:
        assert pool.read(c)[:1] in (b"c", b"\x00")

    def test_dirty_eviction_writes_back(self):
        pf, pool = make_pool(capacity=1)
        a, b = pool.allocate(), pool.allocate()
        pool.write(a, b"dirty")
        pool.write(b, b"next")  # evicts a, which must be written back
        assert pf.stats.page_writes >= 1
        pool.clear()
        assert pf.read_page(a)[:5] == b"dirty"

    def test_flush_persists_all_dirty_pages(self):
        pf, pool = make_pool(capacity=8)
        pids = [pool.allocate() for _ in range(4)]
        for i, pid in enumerate(pids):
            pool.write(pid, bytes([65 + i]) * 10)
        pool.flush()
        for i, pid in enumerate(pids):
            assert pf.read_page(pid)[:10] == bytes([65 + i]) * 10

    def test_clear_empties_pool(self):
        pf, pool = make_pool(capacity=8)
        pid = pool.allocate()
        pool.write(pid, b"z")
        pool.clear()
        assert pool.resident_pages == 0
        # Data still readable from backing file.
        assert pool.read(pid)[:1] == b"z"


class TestZeroCapacity:
    def test_every_access_is_physical(self):
        pf, pool = make_pool(capacity=0)
        pid = pool.allocate()
        pool.write(pid, b"raw")
        pool.read(pid)
        pool.read(pid)
        assert pf.stats.page_reads == 2
        assert pf.stats.page_writes == 1
        assert pf.stats.buffer_hits == 0


class TestValidation:
    def test_negative_capacity_rejected(self):
        pf = PageFile()
        with pytest.raises(ValueError):
            BufferPool(pf, capacity=-1)

    def test_free_drops_cached_frame(self):
        pf, pool = make_pool(capacity=4)
        pid = pool.allocate()
        pool.write(pid, b"gone")
        pool.free(pid)
        assert pool.resident_pages == 0
