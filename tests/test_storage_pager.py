"""Unit tests for the fixed-size page file."""


import pytest

from repro.storage.pager import PAGE_SIZE, PageError, PageFile


def page(payload: bytes, size: int = PAGE_SIZE) -> bytes:
    """Pad a payload to a full page (write_page rejects anything else)."""
    return payload.ljust(size, b"\x00")


class TestAllocation:
    def test_ids_are_sequential(self):
        pf = PageFile()
        assert [pf.allocate() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_num_pages_tracks_allocations(self):
        pf = PageFile()
        for _ in range(3):
            pf.allocate()
        assert pf.num_pages == 3

    def test_freed_pages_are_reused(self):
        pf = PageFile()
        a = pf.allocate()
        pf.allocate()
        pf.free(a)
        assert pf.allocate() == a

    def test_free_rejects_unallocated_page(self):
        pf = PageFile()
        with pytest.raises(PageError):
            pf.free(0)

    def test_double_free_is_typed(self):
        pf = PageFile()
        a = pf.allocate()
        pf.free(a)
        with pytest.raises(PageError):
            pf.free(a)

    def test_reallocated_page_can_be_freed_again(self):
        pf = PageFile()
        a = pf.allocate()
        pf.free(a)
        assert pf.allocate() == a
        pf.free(a)  # no PageError: the reuse cleared the free mark


class TestReadWrite:
    def test_roundtrip(self):
        pf = PageFile()
        pid = pf.allocate()
        pf.write_page(pid, page(b"hello"))
        assert pf.read_page(pid)[:5] == b"hello"

    def test_short_payload_rejected(self):
        pf = PageFile()
        pid = pf.allocate()
        with pytest.raises(PageError):
            pf.write_page(pid, b"x")

    def test_fresh_page_reads_as_zeros(self):
        pf = PageFile()
        pid = pf.allocate()
        assert pf.read_page(pid) == b"\x00" * PAGE_SIZE

    def test_oversized_payload_rejected(self):
        pf = PageFile()
        pid = pf.allocate()
        with pytest.raises(PageError):
            pf.write_page(pid, b"z" * (PAGE_SIZE + 1))

    def test_out_of_range_read_rejected(self):
        pf = PageFile()
        with pytest.raises(PageError):
            pf.read_page(0)

    def test_writes_do_not_leak_across_pages(self):
        pf = PageFile()
        a, b = pf.allocate(), pf.allocate()
        pf.write_page(a, page(b"a" * 100))
        pf.write_page(b, page(b"b" * 100))
        assert pf.read_page(a)[:100] == b"a" * 100
        assert pf.read_page(b)[:100] == b"b" * 100


class TestStats:
    def test_reads_and_writes_counted(self):
        pf = PageFile()
        pid = pf.allocate()
        pf.write_page(pid, page(b"x"))
        pf.read_page(pid)
        pf.read_page(pid)
        assert pf.stats.page_writes == 1
        assert pf.stats.page_reads == 2
        assert pf.stats.disk_accesses == 3


class TestFlush:
    def test_flush_on_memory_file_is_a_noop(self):
        pf = PageFile()
        pf.allocate()
        pf.flush()  # nothing to sync, must not raise

    def test_flush_on_disk_file_syncs(self, tmp_path):
        path = str(tmp_path / "pages.db")
        with PageFile(path=path) as pf:
            pid = pf.allocate()
            pf.write_page(pid, page(b"durable"))
            pf.flush()
        with PageFile(path=path) as pf2:
            assert pf2.read_page(pid)[:7] == b"durable"


class TestDiskBacked:
    def test_roundtrip_on_disk(self, tmp_path):
        path = str(tmp_path / "pages.db")
        with PageFile(path=path) as pf:
            pid = pf.allocate()
            pf.write_page(pid, page(b"persistent"))
        with PageFile(path=path) as pf2:
            assert pf2.read_page(pid)[:10] == b"persistent"

    def test_reopen_sees_existing_pages(self, tmp_path):
        path = str(tmp_path / "pages.db")
        with PageFile(path=path) as pf:
            for _ in range(4):
                pf.allocate()
            pf.write_page(3, page(b"tail"))
        with PageFile(path=path) as pf2:
            assert pf2.num_pages == 4

    def test_custom_page_size(self, tmp_path):
        pf = PageFile(page_size=512)
        pid = pf.allocate()
        pf.write_page(pid, b"y" * 512)
        assert len(pf.read_page(pid)) == 512

    def test_invalid_page_size_rejected(self):
        with pytest.raises(PageError):
            PageFile(page_size=0)
