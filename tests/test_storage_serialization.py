"""Unit and property tests for the node page layout."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree.geometry import Rect
from repro.rtree.node import Entry, Node
from repro.storage.serialization import (
    decode_node,
    encode_node,
    max_entries_for_page,
)


def make_node(level, dim, count, seed=0):
    rng = np.random.default_rng(seed)
    entries = []
    for i in range(count):
        lo = rng.uniform(-100, 100, dim)
        hi = lo + rng.uniform(0, 10, dim)
        entries.append(Entry(Rect(lo, hi), int(rng.integers(0, 2**40))))
    return Node(node_id=7, level=level, entries=entries)


class TestRoundTrip:
    @pytest.mark.parametrize("dim", [1, 2, 6, 16])
    @pytest.mark.parametrize("level", [0, 1, 5])
    def test_roundtrip_preserves_everything(self, dim, level):
        node = make_node(level, dim, count=10, seed=dim * 10 + level)
        data = encode_node(node, dim, 4096)
        back = decode_node(data, node_id=7)
        assert back.level == node.level
        assert back.node_id == 7
        assert len(back.entries) == len(node.entries)
        for a, b in zip(node.entries, back.entries):
            assert a.child == b.child
            assert np.array_equal(a.rect.lows, b.rect.lows)
            assert np.array_equal(a.rect.highs, b.rect.highs)

    def test_empty_node_roundtrip(self):
        node = Node(node_id=0, level=0, entries=[])
        back = decode_node(encode_node(node, 4, 4096), 0)
        assert back.entries == []
        assert back.is_leaf

    def test_negative_child_ids_survive(self):
        node = Node(0, 0, [Entry(Rect.from_point([1.0, 2.0]), -5)])
        back = decode_node(encode_node(node, 2, 4096), 0)
        assert back.entries[0].child == -5


class TestCapacity:
    def test_max_entries_formula(self):
        # dim=6: entry = 16*6+8 = 104 bytes; header 8 -> (4096-8)//104 = 39.
        assert max_entries_for_page(4096, 6) == 39

    def test_overfull_node_rejected(self):
        cap = max_entries_for_page(4096, 6)
        node = make_node(0, 6, cap + 1)
        with pytest.raises(ValueError):
            encode_node(node, 6, 4096)

    def test_exactly_full_node_fits(self):
        cap = max_entries_for_page(4096, 6)
        node = make_node(0, 6, cap)
        assert len(encode_node(node, 6, 4096)) <= 4096

    def test_page_too_small_for_one_entry(self):
        with pytest.raises(ValueError):
            max_entries_for_page(16, 8)


class TestValidation:
    def test_dimension_mismatch_rejected(self):
        node = make_node(0, 3, 2)
        with pytest.raises(ValueError):
            encode_node(node, 4, 4096)

    def test_bad_magic_rejected(self):
        node = make_node(0, 2, 1)
        data = bytearray(encode_node(node, 2, 4096))
        data[0] = 0x00
        with pytest.raises(ValueError):
            decode_node(bytes(data), 0)

    def test_level_out_of_range_rejected(self):
        node = make_node(300, 2, 1)
        with pytest.raises(ValueError):
            encode_node(node, 2, 4096)


@settings(max_examples=50, deadline=None)
@given(
    dim=st.integers(min_value=1, max_value=8),
    count=st.integers(min_value=0, max_value=20),
    level=st.integers(min_value=0, max_value=255),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_roundtrip_property(dim, count, level, seed):
    """Any encodable node decodes to an identical node."""
    node = make_node(level, dim, count, seed=seed)
    back = decode_node(encode_node(node, dim, 65536), node_id=node.node_id)
    assert back.level == node.level
    assert [e.child for e in back.entries] == [e.child for e in node.entries]
    for a, b in zip(node.entries, back.entries):
        assert np.array_equal(a.rect.lows, b.rect.lows)
        assert np.array_equal(a.rect.highs, b.rect.highs)
