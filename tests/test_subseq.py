"""Tests for the subsequence-matching subsystem (FRM94 ST-index)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.examples import EX12_P, EX12_S
from repro.subseq import STIndex, sliding_features, sliding_windows
from repro.subseq.window import encode_rect


class TestSlidingWindows:
    def test_shapes(self, rng):
        x = rng.normal(size=50)
        wins = sliding_windows(x, 8)
        assert wins.shape == (43, 8)
        assert np.array_equal(wins[0], x[:8])
        assert np.array_equal(wins[-1], x[-8:])

    def test_window_equal_length(self, rng):
        x = rng.normal(size=10)
        wins = sliding_windows(x, 10)
        assert wins.shape == (1, 10)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            sliding_windows(rng.normal(size=5), 6)
        with pytest.raises(ValueError):
            sliding_windows(rng.normal(size=(2, 5)), 2)
        with pytest.raises(ValueError):
            sliding_windows(rng.normal(size=5), 0)


class TestSlidingFeatures:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(8, 60),
        w=st.integers(4, 16),
        k=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    def test_incremental_matches_fft(self, n, w, k, seed):
        """The O(k) recurrence reproduces per-window FFTs exactly."""
        if w > n:
            w = n
        k = min(k, w)
        x = np.random.default_rng(seed).normal(size=n)
        inc = sliding_features(x, w, k, method="incremental")
        fft = sliding_features(x, w, k, method="fft")
        assert np.allclose(inc, fft, atol=1e-8)

    def test_first_window_is_plain_dft(self, rng):
        x = rng.normal(size=30)
        feats = sliding_features(x, 8, 3)
        want = np.fft.fft(x[:8])[:3] / np.sqrt(8)
        assert np.allclose(feats[0], want)

    def test_feature_distance_lower_bounds_window_distance(self, rng):
        """The filter premise: truncated-spectrum distance <= true."""
        x = rng.normal(size=40)
        y = rng.normal(size=40)
        fx = sliding_features(x, 16, 4)
        fy = sliding_features(y, 16, 4)
        for p in range(fx.shape[0]):
            lb = float(np.linalg.norm(fx[p] - fy[p]))
            true = float(np.linalg.norm(x[p : p + 16] - y[p : p + 16]))
            assert lb <= true + 1e-9

    def test_bad_method(self, rng):
        with pytest.raises(ValueError):
            sliding_features(rng.normal(size=10), 4, 2, method="magic")

    def test_encode_rect_layout(self, rng):
        f = rng.normal(size=(3, 2)) + 1j * rng.normal(size=(3, 2))
        enc = encode_rect(f)
        assert enc.shape == (3, 4)
        assert np.allclose(enc[:, 0], f[:, 0].real)
        assert np.allclose(enc[:, 3], f[:, 1].imag)


def build_index(rng, grouping="adaptive", num=12, length=80, window=8):
    idx = STIndex(window=window, k=3, grouping=grouping, chunk=8)
    for _ in range(num):
        idx.add_series(np.cumsum(rng.uniform(-1, 1, size=length)))
    return idx


class TestSTIndexExact:
    @pytest.mark.parametrize("grouping", ["fixed", "adaptive"])
    def test_window_query_matches_brute_force(self, rng, grouping):
        idx = build_index(rng, grouping)
        q = idx.series(3)[10:18].copy()
        for eps in [0.0, 0.5, 2.0, 5.0]:
            got = idx.range_query(q, eps)
            want = idx.brute_force(q, eps)
            assert [(m.series_id, m.offset) for m in got] == [
                (m.series_id, m.offset) for m in want
            ]

    @pytest.mark.parametrize("grouping", ["fixed", "adaptive"])
    def test_long_query_matches_brute_force(self, rng, grouping):
        idx = build_index(rng, grouping)
        q = idx.series(5)[4:36].copy()  # 4 pieces of 8
        for eps in [0.5, 2.0, 6.0]:
            got = idx.range_query(q, eps)
            want = idx.brute_force(q, eps)
            assert [(m.series_id, m.offset) for m in got] == [
                (m.series_id, m.offset) for m in want
            ]

    def test_non_multiple_length_query(self, rng):
        """Queries whose length is not a window multiple still work (the
        remainder tail is verified in refinement)."""
        idx = build_index(rng)
        q = idx.series(2)[7:28].copy()  # length 21 = 2*8 + 5
        got = idx.range_query(q, 3.0)
        want = idx.brute_force(q, 3.0)
        assert [(m.series_id, m.offset) for m in got] == [
            (m.series_id, m.offset) for m in want
        ]

    def test_exact_self_match_found(self, rng):
        idx = build_index(rng)
        q = idx.series(0)[20:28].copy()
        got = idx.range_query(q, 0.0)
        assert any(m.series_id == 0 and m.offset == 20 for m in got)
        assert got[0].distance == pytest.approx(0.0)

    def test_perturbed_match_distance(self, rng):
        idx = build_index(rng)
        q = idx.series(1)[5:13] + rng.normal(0, 0.05, size=8)
        got = idx.range_query(q, 1.0)
        hit = [m for m in got if m.series_id == 1 and m.offset == 5]
        assert hit and hit[0].distance <= 1.0


class TestSTIndexProperties:
    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(seed=st.integers(0, 5000), eps=st.floats(0.1, 8.0), qlen=st.integers(8, 30))
    def test_no_false_dismissals_property(self, seed, eps, qlen):
        rng = np.random.default_rng(seed)
        idx = build_index(rng, num=6, length=60)
        src = idx.series(int(rng.integers(0, 6)))
        start = int(rng.integers(0, len(src) - qlen))
        q = src[start : start + qlen] + rng.normal(0, 0.1, size=qlen)
        got = {(m.series_id, m.offset) for m in idx.range_query(q, eps)}
        want = {(m.series_id, m.offset) for m in idx.brute_force(q, eps)}
        assert want <= got or want == got  # index answers == brute force
        assert got == want

    def test_adaptive_produces_fewer_or_equal_subtrails(self, rng):
        fixed = build_index(rng, "fixed", num=10)
        rng2 = np.random.default_rng(12345)
        adaptive = build_index(rng2, "adaptive", num=10)
        # Both must at least cover every offset; counts are implementation
        # detail but must stay sane (no degenerate 1-point explosion).
        per_series = adaptive.num_subtrails / adaptive.num_series
        assert per_series < (80 - 8 + 1)  # strictly better than one MBR/point


class TestSTIndexValidation:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            STIndex(window=1)
        with pytest.raises(ValueError):
            STIndex(window=8, k=0)
        with pytest.raises(ValueError):
            STIndex(window=8, k=9)
        with pytest.raises(ValueError):
            STIndex(window=8, grouping="magic")
        with pytest.raises(ValueError):
            STIndex(window=8, chunk=0)

    def test_short_series_rejected(self):
        idx = STIndex(window=8)
        with pytest.raises(ValueError):
            idx.add_series(np.zeros(5))

    def test_short_query_rejected(self, rng):
        idx = build_index(rng)
        with pytest.raises(ValueError):
            idx.range_query(np.zeros(4), 1.0)

    def test_negative_eps_rejected(self, rng):
        idx = build_index(rng)
        with pytest.raises(ValueError):
            idx.range_query(np.zeros(8), -1.0)


class TestPaperExample12AsSubsequenceQuery:
    def test_no_length4_window_of_s_matches_p(self):
        """Example 1.2 restated: every window of s is farther than 1.41
        from p, so a subsequence query at eps=1.41 misses — motivating the
        time-warp transformation."""
        idx = STIndex(window=4, k=2)
        idx.add_series(EX12_S)
        got = idx.range_query(EX12_P, 1.41 - 1e-9)
        assert got == []
        # But the warped query matches exactly.
        from repro.core.transforms import warp_series

        warped = warp_series(EX12_P, 2)
        hits = idx.range_query(warped[:4], 0.0)
        assert hits  # the first warped window (20,20,21,21) occurs in s
