"""Parity suite for the columnar subsequence pipeline.

Asserts that the fast path (STR bulk-load + frozen kernel probe +
array candidate expansion + matrix refine) agrees with the recursive
scalar reference path and with the exhaustive ``brute_force`` scan —
the same ``(series_id, offset, distance)`` triples — across grouping
policies, build modes, query lengths and ``eps`` regimes, and that the
batched ``range_query_batch`` equals a per-query loop.
"""

import numpy as np
import pytest

from repro.core.similarity import batch_euclidean_within
from repro.rtree.bulk import str_pack_rects
from repro.rtree.geometry import Rect
from repro.subseq import STIndex


def build_index(rng, grouping="adaptive", num=12, length=100, window=8, **kw):
    idx = STIndex(window=window, k=3, grouping=grouping, chunk=8, **kw)
    for _ in range(num):
        idx.add_series(np.cumsum(rng.uniform(-1, 1, size=length)))
    return idx


def triples(matches):
    return [(m.series_id, m.offset, round(m.distance, 9)) for m in matches]


def offsets(matches):
    return [(m.series_id, m.offset) for m in matches]


class TestFastEqualsReferenceEqualsBrute:
    @pytest.mark.parametrize("grouping", ["fixed", "adaptive"])
    def test_window_length_queries(self, rng, grouping):
        idx = build_index(rng, grouping)
        q = idx.series(3)[10:18].copy()
        for eps in [0.0, 0.5, 2.0, 5.0]:
            fast = idx.range_query(q, eps)
            ref = idx.range_query_reference(q, eps)
            brute = idx.brute_force(q, eps)
            assert triples(fast) == triples(ref) == triples(brute)

    @pytest.mark.parametrize("grouping", ["fixed", "adaptive"])
    def test_multipiece_queries(self, rng, grouping):
        idx = build_index(rng, grouping)
        for qlen in [16, 21, 32]:  # 2 pieces, 2 pieces + tail, 4 pieces
            q = idx.series(5)[4 : 4 + qlen].copy()
            for eps in [0.5, 2.0, 6.0]:
                fast = idx.range_query(q, eps)
                ref = idx.range_query_reference(q, eps)
                brute = idx.brute_force(q, eps)
                assert triples(fast) == triples(ref) == triples(brute)

    def test_eps_zero_exact_match(self, rng):
        idx = build_index(rng)
        q = idx.series(0)[20:28].copy()
        fast = idx.range_query(q, 0.0)
        assert (0, 20) in offsets(fast)
        assert fast[0].distance == pytest.approx(0.0)
        assert offsets(fast) == offsets(idx.range_query_reference(q, 0.0))
        assert offsets(fast) == offsets(idx.brute_force(q, 0.0))

    def test_eps_zero_multipiece_exact_match(self, rng):
        idx = build_index(rng)
        q = idx.series(2)[6:30].copy()  # 3 pieces of 8
        fast = idx.range_query(q, 0.0)
        assert (2, 6) in offsets(fast)
        assert offsets(fast) == offsets(idx.brute_force(q, 0.0))

    @pytest.mark.parametrize("grouping", ["fixed", "adaptive"])
    def test_property_sweep(self, grouping):
        for seed in range(6):
            rng = np.random.default_rng(seed)
            idx = build_index(rng, grouping, num=6, length=60)
            qlen = int(rng.integers(8, 30))
            src = idx.series(int(rng.integers(0, 6)))
            start = int(rng.integers(0, len(src) - qlen))
            q = src[start : start + qlen] + rng.normal(0, 0.1, size=qlen)
            eps = float(rng.uniform(0.1, 6.0))
            assert triples(idx.range_query(q, eps)) == triples(
                idx.brute_force(q, eps)
            )


class TestCandidatePhase:
    def test_candidate_offsets_match_reference_expansion(self, rng):
        idx = build_index(rng, num=8)
        for qlen, eps in [(8, 1.0), (20, 2.0), (24, 0.5)]:
            src = idx.series(1)
            q = src[2 : 2 + qlen] + rng.normal(0, 0.05, qlen)
            series, aligned = idx.candidate_offsets(q, eps)
            got = set(zip(series.tolist(), aligned.tolist()))
            want = idx._multipiece_candidates(np.asarray(q), eps)
            assert got == want
            # series-major, offset-minor ordering (the packed-key contract)
            keys = series * idx._offset_stride + aligned
            assert np.all(np.diff(keys) > 0)

    def test_empty_index(self):
        idx = STIndex(window=8)
        series, aligned = idx.candidate_offsets(np.zeros(8), 1.0)
        assert series.size == 0 and aligned.size == 0
        assert idx.range_query(np.zeros(8), 1.0) == []


class TestBatchedQueries:
    def test_batch_equals_per_query_loop(self, rng):
        idx = build_index(rng, num=10)
        queries = []
        for _ in range(7):
            sid = int(rng.integers(0, idx.num_series))
            src = idx.series(sid)
            qlen = int(rng.integers(8, 25))
            start = int(rng.integers(0, len(src) - qlen))
            queries.append(src[start : start + qlen] + rng.normal(0, 0.05, qlen))
        eps = 2.0
        batch = idx.range_query_batch(queries, eps)
        loop = [idx.range_query(q, eps) for q in queries]
        assert [triples(b) for b in batch] == [triples(l) for l in loop]

    def test_mixed_length_batch(self, rng):
        idx = build_index(rng)
        qs = [idx.series(0)[0:8].copy(), idx.series(1)[3:27].copy()]
        batch = idx.range_query_batch(qs, 1.0)
        assert triples(batch[0]) == triples(idx.brute_force(qs[0], 1.0))
        assert triples(batch[1]) == triples(idx.brute_force(qs[1], 1.0))

    def test_empty_batch(self, rng):
        idx = build_index(rng)
        assert idx.range_query_batch([], 1.0) == []

    def test_batch_validation(self, rng):
        idx = build_index(rng)
        with pytest.raises(ValueError):
            idx.range_query_batch([np.zeros(4)], 1.0)
        with pytest.raises(ValueError):
            idx.range_query_batch([np.zeros(8)], -1.0)


class TestBuildModes:
    @pytest.mark.parametrize("grouping", ["fixed", "adaptive"])
    def test_bulk_and_insert_builds_agree(self, grouping):
        rng = np.random.default_rng(7)
        bulk = build_index(rng, grouping, build="bulk")
        rng = np.random.default_rng(7)
        insert = build_index(rng, grouping, build="insert")
        assert bulk.num_subtrails == insert.num_subtrails
        q = bulk.series(4)[11:19].copy()
        for eps in [0.0, 1.0, 3.0]:
            assert triples(bulk.range_query(q, eps)) == triples(
                insert.range_query(q, eps)
            )
            assert triples(insert.range_query(q, eps)) == triples(
                insert.range_query_reference(q, eps)
            )

    def test_incremental_add_after_query_reseals(self, rng):
        idx = build_index(rng, num=4)
        q = idx.series(0)[5:13].copy()
        before = idx.range_query(q, 2.0)
        idx.add_series(np.concatenate([q, q[::-1], q]))  # contains q at offset 0
        after = idx.range_query(q, 2.0)
        assert triples(after) == triples(idx.brute_force(q, 2.0))
        assert len(after) > len(before)

    def test_bad_build_mode_rejected(self):
        with pytest.raises(ValueError):
            STIndex(window=8, build="magic")


class TestGroupingParity:
    @pytest.mark.parametrize("grouping", ["fixed", "adaptive"])
    def test_vectorized_groups_match_scalar_reference(self, grouping):
        from repro.subseq.window import encode_rect, sliding_features

        for seed in range(8):
            rng = np.random.default_rng(seed)
            for length, window, chunk in [(60, 8, 8), (200, 16, 16), (33, 8, 4)]:
                idx = STIndex(window=window, k=3, grouping=grouping, chunk=chunk)
                x = np.cumsum(rng.uniform(-1, 1, size=length))
                points = encode_rect(sliding_features(x, window, 3))
                starts = idx._group_starts(points)
                ends = np.append(starts[1:] - 1, points.shape[0] - 1)
                assert list(zip(starts.tolist(), ends.tolist())) == idx._group(points)

    def test_single_point_trail(self):
        idx = STIndex(window=8, chunk=4)
        sid = idx.add_series(np.arange(8.0))  # exactly one window offset
        assert idx.num_subtrails == 1
        got = idx.range_query(np.arange(8.0), 0.0)
        assert offsets(got) == [(sid, 0)]


class TestStrPackRects:
    def test_search_matches_linear_scan(self, rng):
        lows = rng.uniform(0, 50, size=(300, 3))
        highs = lows + rng.uniform(0, 2, size=(300, 3))
        tree = str_pack_rects(lows, highs, max_entries=8)
        assert len(tree) == 300
        probe = Rect(np.full(3, 10.0), np.full(3, 20.0))
        got = sorted(e.child for e in tree.search(probe))
        want = sorted(
            i
            for i in range(300)
            if np.all(lows[i] <= probe.highs) and np.all(probe.lows <= highs[i])
        )
        assert got == want

    def test_empty_and_mismatch(self):
        tree = str_pack_rects(np.empty((0, 2)), np.empty((0, 2)))
        assert len(tree) == 0
        with pytest.raises(ValueError):
            str_pack_rects(np.zeros((3, 2)), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            str_pack_rects(np.zeros((3, 2)), np.zeros((3, 2)), record_ids=[1, 2])


class TestRealDtypeVerifier:
    def test_real_path_matches_complex_path(self, rng):
        matrix = rng.normal(size=(40, 24))
        q = rng.normal(size=24)
        for eps in [0.0, 0.5, 3.0, 50.0]:
            kept_r, d_r, ab_r = batch_euclidean_within(matrix, q, eps)
            kept_c, d_c, ab_c = batch_euclidean_within(
                matrix.astype(np.complex128), q.astype(np.complex128), eps
            )
            assert np.array_equal(kept_r, kept_c)
            assert np.array_equal(d_r, d_c)
            assert ab_r == ab_c
