"""Subsequence k-NN: edge cases, tie determinism, planner and plan API.

The k-closest-windows query rides the frozen kernel's batched k-NN with
the sub-trail MBRs as *box* leaves and an expanding window verifier;
these tests pin down its contract — the kernel's uniform edge cases
(``k == 0``, ``k`` beyond the window count, empty index), deterministic
``(series, offset)`` ordering under duplicate distances, the
``range_query_batch`` empty/NaN hardening, the multipiece-vs-prefix
probe planner, and the ``EXPLAIN``/language surface.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.language import QueryError, QuerySession
from repro.core.plan import QuerySpec
from repro.data import SequenceRelation
from repro.rtree.kernel import FrontierStats
from repro.subseq import STIndex


def build_index(seed=0, num=10, length=120, window=8, **kw):
    rng = np.random.default_rng(seed)
    idx = STIndex(window=window, k=3, chunk=8, **kw)
    for _ in range(num):
        idx.add_series(np.cumsum(rng.uniform(-1, 1, size=length)))
    return idx


def keys(matches):
    return [(m.series_id, m.offset) for m in matches]


@pytest.fixture(scope="module")
def idx() -> STIndex:
    return build_index()


@pytest.fixture(scope="module")
def query(idx) -> np.ndarray:
    return idx.series(3)[10:30].copy()  # length 20 > window 8


# ----------------------------------------------------------------------
# edge cases
# ----------------------------------------------------------------------
class TestKnnEdgeCases:
    def test_k_zero_is_empty(self, idx, query):
        assert idx.knn_query(query, 0) == []
        assert idx.knn_query_batch([query, query], 0) == [[], []]

    def test_negative_k_raises(self, idx, query):
        with pytest.raises(ValueError, match="non-negative"):
            idx.knn_query(query, -1)
        with pytest.raises(ValueError, match="non-negative"):
            idx.brute_force_knn(query, -1)

    def test_k_beyond_total_windows_returns_all(self, idx, query):
        res = idx.knn_query(query, 10**9)
        brute = idx.brute_force_knn(query, 10**9)
        # Every alignable window of every series, exactly once.
        expected = sum(
            idx.series(s).shape[0] - query.shape[0] + 1
            for s in range(idx.num_series)
        )
        assert len(res) == expected
        assert keys(res) == keys(brute)

    def test_query_shorter_than_window_raises(self, idx):
        with pytest.raises(ValueError, match="length >="):
            idx.knn_query(np.zeros(idx.window - 1), 3)

    def test_series_shorter_than_window_rejected_at_add(self):
        st = STIndex(window=8)
        with pytest.raises(ValueError, match="length >= 8"):
            st.add_series(np.zeros(7))

    def test_empty_index(self, query):
        st = STIndex(window=8)
        assert st.knn_query(query[:8], 5) == []
        assert st.knn_query_batch([query[:8]], 5) == [[]]
        assert st.brute_force_knn(query[:8], 5) == []

    def test_empty_batch(self, idx):
        assert idx.knn_query_batch([], 5) == []

    def test_nan_query_raises(self, idx):
        bad = np.full(12, np.nan)
        with pytest.raises(ValueError, match="finite"):
            idx.knn_query(bad, 3)

    def test_query_longer_than_every_series(self, idx):
        # No series can host an alignment: empty result, not an error.
        long_q = np.zeros(1000)
        assert idx.knn_query(long_q, 5) == []
        assert idx.brute_force_knn(long_q, 5) == []


class TestKnnParity:
    @pytest.mark.parametrize("qlen", [8, 13, 20, 33])
    @pytest.mark.parametrize("k", [1, 4, 17])
    def test_matches_brute_force(self, idx, qlen, k):
        rng = np.random.default_rng(qlen * 31 + k)
        src = idx.series(int(rng.integers(0, idx.num_series)))
        start = int(rng.integers(0, src.shape[0] - qlen))
        q = src[start : start + qlen] + rng.normal(0, 0.05, qlen)
        fast = idx.knn_query(q, k)
        brute = idx.brute_force_knn(q, k)
        assert keys(fast) == keys(brute)
        np.testing.assert_allclose(
            [m.distance for m in fast],
            [m.distance for m in brute],
            atol=1e-9,
        )

    def test_batch_equals_loop(self, idx):
        rng = np.random.default_rng(5)
        qs = [
            idx.series(i)[j : j + 8 + 4 * i] + rng.normal(0, 0.02, 8 + 4 * i)
            for i, j in [(0, 3), (1, 20), (2, 50)]
        ]
        batched = idx.knn_query_batch(qs, 5)
        looped = [idx.knn_query(q, 5) for q in qs]
        assert [keys(b) for b in batched] == [keys(l) for l in looped]

    @pytest.mark.parametrize("build", ["bulk", "insert"])
    @pytest.mark.parametrize("grouping", ["fixed", "adaptive"])
    def test_across_build_modes(self, build, grouping):
        st = build_index(seed=2, num=6, length=80, build=build)
        st.grouping = grouping  # affects nothing post-build; vary the seed
        q = st.series(1)[7:23].copy()
        assert keys(st.knn_query(q, 6)) == keys(st.brute_force_knn(q, 6))

    def test_frontier_stats_filled(self, idx, query):
        fstats = FrontierStats()
        idx.knn_query(query, 3, fstats=fstats)
        assert fstats.nodes_expanded > 0
        assert fstats.entries_scanned > 0
        assert fstats.frontier_peak > 0


class TestKnnTieDeterminism:
    def test_duplicate_series_ties_resolve_by_series_then_offset(self):
        # Three identical series: every window distance appears three
        # times; the k-th boundary cuts through an exact-tie group and
        # must keep the smallest (series, offset) keys.
        rng = np.random.default_rng(9)
        base = np.cumsum(rng.uniform(-1, 1, size=60))
        st = STIndex(window=8, k=2, chunk=8)
        for _ in range(3):
            st.add_series(base)
        q = base[10:18].copy()
        for k in (1, 2, 4, 5):
            fast = st.knn_query(q, k)
            brute = st.brute_force_knn(q, k)
            assert keys(fast) == keys(brute)
            order = [(m.distance, m.series_id, m.offset) for m in fast]
            assert order == sorted(order)

    def test_exact_zero_ties_all_found(self):
        # Two exact copies: both zero-distance offsets must surface even
        # though the pruning radius hits zero after the first.
        base = np.sin(np.linspace(0, 8, 50))
        st = STIndex(window=8, k=3)
        st.add_series(base)
        st.add_series(base)
        q = base[5:13].copy()
        res = st.knn_query(q, 2)
        assert keys(res) == [(0, 5), (1, 5)]
        assert [m.distance for m in res] == [0.0, 0.0]


# ----------------------------------------------------------------------
# range_query_batch hardening (the PR's fix satellite)
# ----------------------------------------------------------------------
class TestRangeBatchHardening:
    def test_empty_query_list(self, idx):
        assert idx.range_query_batch([], 1.0) == []
        fstats = FrontierStats()
        assert idx.range_query_batch([], 1.0, fstats=fstats) == []
        assert fstats.nodes_expanded == 0

    def test_empty_query_list_on_empty_index(self):
        assert STIndex(window=8).range_query_batch([], 1.0) == []

    def test_zero_length_query_raises(self, idx):
        with pytest.raises(ValueError, match="length >="):
            idx.range_query(np.empty(0), 1.0)
        with pytest.raises(ValueError, match="length >="):
            idx.range_query_batch([np.empty(0)], 1.0)

    def test_nan_query_raises_cleanly(self, idx):
        with pytest.raises(ValueError, match="finite"):
            idx.range_query(np.full(12, np.nan), 1.0)
        with pytest.raises(ValueError, match="finite"):
            idx.range_query_batch([np.full(12, np.inf)], 1.0)

    def test_batch_rejects_nan_before_probing_good_queries(self, idx, query):
        # Validation happens for the whole batch up front.
        with pytest.raises(ValueError, match="finite"):
            idx.range_query_batch([query, np.full(12, np.nan)], 1.0)


# ----------------------------------------------------------------------
# probe strategies + planner
# ----------------------------------------------------------------------
class TestProbeStrategies:
    @pytest.mark.parametrize("probe", ["auto", "multipiece", "prefix"])
    def test_answers_identical_across_strategies(self, idx, probe):
        rng = np.random.default_rng(11)
        for qlen, eps in [(8, 1.0), (20, 2.5), (33, 6.0)]:
            src = idx.series(2)
            q = src[4 : 4 + qlen] + rng.normal(0, 0.05, qlen)
            brute = idx.brute_force(q, eps)
            got = idx.range_query(q, eps, probe=probe)
            assert keys(got) == keys(brute)

    def test_prefix_reference_parity(self, idx):
        rng = np.random.default_rng(13)
        q = idx.series(4)[6:30] + rng.normal(0, 0.05, 24)
        eps = 3.0
        fast = idx.range_query(q, eps, probe="prefix")
        ref = idx.range_query_reference(q, eps, probe="prefix")
        brute = idx.brute_force(q, eps)
        assert keys(fast) == keys(ref) == keys(brute)

    def test_prefix_candidates_superset_of_answers(self, idx):
        q = idx.series(0)[0:24].copy()
        eps = 2.0
        series, aligned = idx.candidate_offsets(q, eps, probe="prefix")
        cands = set(zip(series.tolist(), aligned.tolist()))
        assert set(keys(idx.brute_force(q, eps))) <= cands

    def test_unknown_probe_rejected(self, idx, query):
        with pytest.raises(ValueError, match="probe"):
            idx.range_query(query, 1.0, probe="sideways")

    def test_single_piece_resolves_multipiece(self, idx):
        choice = idx.choose_probe(idx.series(0)[:10], 1.0)
        assert choice.strategy == "multipiece"
        assert choice.pieces == 1

    def test_planner_prefers_prefix_for_broad_queries(self, idx):
        # At a huge eps the multipiece radius eps/sqrt(p) still floods
        # every piece with candidates, so p probes cost ~p times the
        # single prefix probe's candidates.
        q = idx.series(1)[0:32]
        choice = idx.choose_probe(q, 50.0)
        assert choice.pieces == 4
        assert choice.strategy == "prefix"
        assert choice.estimated_prefix < choice.estimated_multipiece

    def test_choice_reported_fields(self, idx):
        d = idx.choose_probe(idx.series(1)[0:32], 5.0).as_dict()
        assert d["strategy"] in ("multipiece", "prefix")
        assert d["pieces"] == 4
        assert "reason" in d


# ----------------------------------------------------------------------
# plan API + EXPLAIN + language
# ----------------------------------------------------------------------
class TestSubseqPlanAPI:
    def test_range_plan_executes_and_explains(self, idx, query):
        plan = idx.plan(
            QuerySpec(kind="subseq_range", series=query, eps=2.0)
        )
        res = plan.execute()
        assert keys(res) == keys(idx.brute_force(query, 2.0))
        info = plan.explain()
        assert info["kind"] == "subseq_range"
        assert info["access_path"] == "st-index"
        assert info["probe"]["strategy"] in ("multipiece", "prefix")
        # executed plans carry the kernel's frontier counters
        assert info["plan"]["frontier"]["nodes_expanded"] > 0

    def test_knn_plan_executes_and_explains(self, idx, query):
        plan = idx.plan(QuerySpec(kind="subseq_knn", series=query, k=4))
        res = plan.execute()
        assert keys(res) == keys(idx.brute_force_knn(query, 4))
        info = plan.explain()
        assert info["kind"] == "subseq_knn"
        assert info["plan"]["op"] == "SubseqKnnSearch"
        assert info["plan"]["frontier"]["entries_scanned"] > 0

    def test_batch_specs(self, idx):
        qs = [idx.series(0)[0:16], idx.series(1)[5:13]]
        plan = idx.plan(QuerySpec(kind="subseq_range", series=qs, eps=1.5))
        res = plan.execute()
        assert len(res) == 2
        assert plan.explain()["batch"] is True
        kplan = idx.plan(QuerySpec(kind="subseq_knn", series=qs, k=2))
        assert len(kplan.execute()) == 2

    def test_forced_probe_hint(self, idx, query):
        plan = idx.plan(
            QuerySpec(
                kind="subseq_range", series=query, eps=2.0, probe="prefix"
            )
        )
        assert plan.explain()["probe"]["strategy"] == "prefix"
        assert keys(plan.execute()) == keys(idx.brute_force(query, 2.0))

    def test_window_mismatch_rejected(self, idx, query):
        with pytest.raises(ValueError, match="window"):
            idx.plan(
                QuerySpec(
                    kind="subseq_range", series=query, eps=1.0, window=99
                )
            )

    def test_missing_fields_rejected(self, idx, query):
        with pytest.raises(ValueError, match="eps"):
            idx.plan(QuerySpec(kind="subseq_range", series=query))
        with pytest.raises(ValueError, match="k"):
            idx.plan(QuerySpec(kind="subseq_knn", series=query))
        with pytest.raises(ValueError, match="series"):
            idx.plan(QuerySpec(kind="subseq_knn", k=3))

    def test_engine_rejects_subseq_specs(self):
        # A subseq spec on the whole-sequence engine must fail loudly —
        # it would otherwise compile as a whole-sequence query and return
        # record ids instead of windows.
        from repro.core.engine import SimilarityEngine

        rng = np.random.default_rng(3)
        rel = SequenceRelation.from_matrix(
            np.cumsum(rng.uniform(-1, 1, size=(10, 32)), axis=1)
        )
        engine = SimilarityEngine(rel)
        q = rel.get(0)
        with pytest.raises(ValueError, match="ST-index"):
            engine.plan(QuerySpec(kind="subseq_knn", series=q, k=3))
        with pytest.raises(ValueError, match="ST-index"):
            engine.plan(QuerySpec(kind="subseq_range", series=q, eps=1.0))

    def test_engine_subseq_index_factory(self):
        # engine.subseq_index builds an ST-index over the relation rows
        # whose plans answer exactly like a hand-built index.
        from repro.core.engine import SimilarityEngine

        rng = np.random.default_rng(4)
        rel = SequenceRelation.from_matrix(
            np.cumsum(rng.uniform(-1, 1, size=(10, 64)), axis=1)
        )
        engine = SimilarityEngine(rel)
        st = engine.subseq_index(window=8)
        assert st.num_series == len(rel)
        q = rel.get(4)[10:30]
        plan = st.plan(QuerySpec(kind="subseq_knn", series=q, k=5))
        assert keys(plan.execute()) == keys(st.brute_force_knn(q, 5))
        insert_st = engine.subseq_index(window=8, build="insert")
        assert keys(insert_st.knn_query(q, 5)) == keys(st.knn_query(q, 5))


class TestSubseqLanguage:
    @pytest.fixture(scope="class")
    def session(self):
        rng = np.random.default_rng(21)
        rel = SequenceRelation.from_matrix(
            np.cumsum(rng.uniform(-1, 1, size=(12, 80)), axis=1)
        )
        s = QuerySession()
        s.bind_relation("r", rel)
        s.bind_sequence("q", rel.get(2)[10:26])
        return s

    def test_knn_subseq(self, session):
        res = session.execute("KNN SUBSEQ q IN r K 3 WINDOW 8")
        assert len(res) == 3
        assert (res[0].series_id, res[0].offset) == (2, 10)
        assert res[0].distance == pytest.approx(0.0)

    def test_range_subseq_with_probe(self, session):
        auto = session.execute("RANGE SUBSEQ q IN r EPS 2 WINDOW 8 PROBE auto")
        multi = session.execute(
            "RANGE SUBSEQ q IN r EPS 2 WINDOW 8 PROBE multipiece"
        )
        pref = session.execute(
            "RANGE SUBSEQ q IN r EPS 2 WINDOW 8 PROBE prefix"
        )
        assert keys(auto) == keys(multi) == keys(pref)

    def test_window_defaults_to_query_length(self, session):
        res = session.execute("KNN SUBSEQ q IN r K 1")
        assert (res[0].series_id, res[0].offset) == (2, 10)

    def test_explain_shows_probe_strategy(self, session):
        info = session.execute(
            "EXPLAIN RANGE SUBSEQ q IN r EPS 2 WINDOW 8"
        )
        assert info["kind"] == "subseq_range"
        assert info["window"] == 8
        assert info["probe"]["strategy"] in ("multipiece", "prefix")

    def test_explain_analyze_carries_frontier(self, session):
        info = session.execute("EXPLAIN ANALYZE KNN SUBSEQ q IN r K 2 WINDOW 8")
        assert info["plan"]["frontier"]["nodes_expanded"] > 0

    def test_bad_probe_is_query_error(self, session):
        with pytest.raises(QueryError, match="PROBE"):
            session.execute("RANGE SUBSEQ q IN r EPS 2 PROBE nope")

    def test_bad_window_is_query_error(self, session):
        with pytest.raises(QueryError, match="WINDOW"):
            session.execute("KNN SUBSEQ q IN r K 2 WINDOW 1")
        # window longer than the relation's series cannot be indexed
        with pytest.raises(QueryError):
            session.execute("KNN SUBSEQ q IN r K 2 WINDOW 500")

    def test_k_zero_is_empty(self, session):
        assert session.execute("KNN SUBSEQ q IN r K 0 WINDOW 8") == []

    def test_window_beyond_query_is_query_error_even_forced(self, session):
        # Validation must fire at compile on every probe path — a plan
        # EXPLAIN would report has to be runnable.
        for stmt in (
            "KNN SUBSEQ q IN r K 2 WINDOW 64",
            "RANGE SUBSEQ q IN r EPS 2 WINDOW 64 PROBE prefix",
            "EXPLAIN RANGE SUBSEQ q IN r EPS 2 WINDOW 64 PROBE multipiece",
        ):
            with pytest.raises(QueryError, match="length >="):
                session.execute(stmt)

    def test_negative_eps_is_query_error(self, session):
        with pytest.raises(QueryError, match="non-negative"):
            session.execute("RANGE SUBSEQ q IN r EPS -1 WINDOW 8 PROBE prefix")
