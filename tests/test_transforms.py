"""Tests for the transformation language (Section 3 + Appendix A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transforms import (
    Transformation,
    identity,
    moving_average,
    reverse,
    scale,
    shift,
    time_warp,
    warp_series,
)
from repro.dft import dft

series16 = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    min_size=16,
    max_size=16,
)


class TestConstruction:
    def test_mismatched_vectors_rejected(self):
        with pytest.raises(ValueError):
            Transformation([1.0, 2.0], [0.0])

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Transformation([1.0], [0.0], cost=-1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Transformation([], [])

    def test_repr_contains_name(self):
        assert "mavg3" in repr(moving_average(8, 3))


class TestNamedTransformations:
    def test_identity_is_noop(self, rng):
        x = rng.normal(size=32)
        assert np.allclose(identity(32).apply_series(x), x)
        assert identity(32).is_identity()

    def test_shift_adds_constant(self, rng):
        x = rng.normal(size=16)
        got = shift(16, 2.5).apply_series(x)
        assert np.allclose(got, x + 2.5, atol=1e-9)

    def test_scale_multiplies(self, rng):
        x = rng.normal(size=16)
        assert np.allclose(scale(16, -3.0).apply_series(x), -3.0 * x, atol=1e-9)

    def test_reverse_negates(self, rng):
        x = rng.normal(size=16)
        assert np.allclose(reverse(16).apply_series(x), -x, atol=1e-9)

    def test_moving_average_equals_circular_window_mean(self, rng):
        """Frequency-domain T_mavg == literal circular moving average."""
        x = rng.normal(size=20)
        got = moving_average(20, 5).apply_series(x)
        want = np.array(
            [np.mean([x[(i - j) % 20] for j in range(5)]) for i in range(20)]
        )
        assert np.allclose(got, want, atol=1e-9)

    def test_moving_average_window_one_is_identity(self, rng):
        x = rng.normal(size=12)
        assert np.allclose(moving_average(12, 1).apply_series(x), x, atol=1e-9)

    def test_weighted_moving_average(self, rng):
        x = rng.normal(size=10)
        w = np.array([0.5, 0.3, 0.2])
        got = moving_average(10, 3, weights=w).apply_series(x)
        want = np.array(
            [sum(w[j] * x[(i - j) % 10] for j in range(3)) for i in range(10)]
        )
        assert np.allclose(got, want, atol=1e-9)

    def test_moving_average_validation(self):
        with pytest.raises(ValueError):
            moving_average(10, 0)
        with pytest.raises(ValueError):
            moving_average(10, 11)
        with pytest.raises(ValueError):
            moving_average(10, 3, weights=[1.0, 2.0])

    def test_paper_m3_vector(self):
        """Section 3.2: T_mavg3's stretch is the DFT of (1/3,1/3,1/3,0...)."""
        t = moving_average(15, 3)
        w = np.zeros(15)
        w[:3] = 1.0 / 3.0
        assert np.allclose(t.a, np.fft.fft(w))
        assert np.allclose(t.b, 0.0)


class TestTimeWarp:
    @pytest.mark.parametrize("n,m", [(4, 2), (8, 3), (16, 2), (5, 4)])
    def test_eq19_matches_literal_warp(self, rng, n, m):
        """a_f * S_f equals the warped series' coefficients under the
        paper's normalisation (1/sqrt(n), Appendix A)."""
        s = rng.normal(size=n)
        t = time_warp(n, m)
        S = dft(s)
        warped = warp_series(s, m)
        S_warp = np.fft.fft(warped) / np.sqrt(n)  # paper's 1/sqrt(n) convention
        assert np.allclose(t.a * S, S_warp[:n], atol=1e-9)

    def test_m_equals_one_is_identity(self, rng):
        s = rng.normal(size=8)
        t = time_warp(8, 1)
        assert np.allclose(t.a, 1.0)

    def test_warp_series_literal(self):
        assert np.array_equal(
            warp_series([1.0, 2.0], 3), [1.0, 1.0, 1.0, 2.0, 2.0, 2.0]
        )

    def test_invalid_m_rejected(self):
        with pytest.raises(ValueError):
            time_warp(8, 0)
        with pytest.raises(ValueError):
            warp_series([1.0], 0)

    def test_dc_stretch_is_m(self):
        """a_0 = m: warping multiplies total mass by m (under 1/sqrt(n))."""
        t = time_warp(8, 4)
        assert t.a[0] == pytest.approx(4.0)


class TestComposition:
    def test_then_applies_in_order(self, rng):
        x = rng.normal(size=16)
        t = scale(16, 2.0).then(shift(16, 1.0))  # first *2, then +1
        assert np.allclose(t.apply_series(x), 2.0 * x + 1.0, atol=1e-8)

    def test_then_other_order(self, rng):
        x = rng.normal(size=16)
        t = shift(16, 1.0).then(scale(16, 2.0))  # first +1, then *2
        assert np.allclose(t.apply_series(x), 2.0 * (x + 1.0), atol=1e-8)

    def test_costs_add(self):
        t = scale(8, 2.0, cost=1.5).then(shift(8, 1.0, cost=2.0))
        assert t.cost == pytest.approx(3.5)

    def test_power_repeats(self, rng):
        x = rng.normal(size=20)
        t2 = moving_average(20, 5).power(2)
        once = moving_average(20, 5).apply_series(x)
        twice = moving_average(20, 5).apply_series(once)
        assert np.allclose(t2.apply_series(x), twice, atol=1e-8)

    def test_power_validation(self):
        with pytest.raises(ValueError):
            identity(4).power(0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            identity(8).then(identity(16))

    def test_mean_std_maps_compose(self):
        t = scale(8, 2.0).then(shift(8, 3.0))
        # mean -> 2*mean + 3; std -> 2*std.
        assert t.mean_map == pytest.approx((2.0, 3.0))
        assert t.std_map == pytest.approx((2.0, 0.0))


class TestSafety:
    def test_real_stretch_safe_in_rect(self):
        assert scale(8, -2.0).is_safe_rect()
        assert shift(8, 1.0).is_safe_rect()
        assert reverse(8).is_safe_rect()

    def test_moving_average_unsafe_in_rect_but_safe_in_polar(self):
        t = moving_average(16, 4)
        assert not t.is_safe_rect()
        assert t.is_safe_polar()

    def test_shift_unsafe_in_polar(self):
        assert not shift(8, 1.0).is_safe_polar()

    def test_time_warp_safe_in_polar(self):
        assert time_warp(8, 2).is_safe_polar()
        assert not time_warp(8, 2).is_safe_rect()


class TestApplication:
    def test_truncated_spectrum_application(self, rng):
        """T_k on the first k coefficients == truncation of T on all."""
        x = rng.normal(size=32)
        t = moving_average(32, 5)
        full = t.apply_spectrum(dft(x))
        part = t.apply_spectrum(dft(x)[:6])
        assert np.allclose(part, full[:6])

    def test_too_long_spectrum_rejected(self):
        with pytest.raises(ValueError):
            identity(4).apply_spectrum(np.zeros(8, dtype=complex))

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            identity(4).apply_series(np.zeros(5))

    @settings(max_examples=30, deadline=None)
    @given(series16, st.floats(-3, 3), st.floats(-3, 3))
    def test_linearity_of_application(self, x, a, c):
        """T(a*x) relates linearly for pure-stretch transformations."""
        t = scale(16, c)
        lhs = t.apply_spectrum(a * dft(np.asarray(x)))
        rhs = a * t.apply_spectrum(dft(np.asarray(x)))
        assert np.allclose(lhs, rhs, atol=1e-6)


class TestDistanceReduction:
    def test_moving_average_is_nonexpansive(self, rng):
        """Plain averaging never increases Euclidean distance (each |a_f|<=1),
        the mechanism behind every Section 2 example."""
        t = moving_average(64, 10)
        assert np.all(np.abs(t.a) <= 1.0 + 1e-12)
        x, y = rng.normal(size=64), rng.normal(size=64)
        d_before = float(np.linalg.norm(x - y))
        d_after = float(
            np.linalg.norm(t.apply_series(x) - t.apply_series(y))
        )
        assert d_after <= d_before + 1e-9
