"""Tests for the extension transformations (difference, exp. smoothing)."""

import numpy as np
import pytest

from repro.core.features import NormalFormSpace, PlainDFTSpace
from repro.core.transforms import (
    difference,
    exponential_smoothing,
    moving_average,
)


class TestDifference:
    def test_matches_literal_circular_difference(self, rng):
        x = rng.normal(size=24)
        got = difference(24).apply_series(x)
        want = x - np.roll(x, 1)
        assert np.allclose(got, want, atol=1e-9)

    def test_constant_series_maps_to_zero(self):
        got = difference(16).apply_series(np.full(16, 3.5))
        assert np.allclose(got, 0.0, atol=1e-9)

    def test_removes_linear_trend_interior(self, rng):
        """Away from the wrap point, differencing a trend is constant."""
        x = 2.0 * np.arange(32) + 5.0
        got = difference(32).apply_series(x)
        assert np.allclose(got[1:], 2.0, atol=1e-8)

    def test_safe_in_polar_only(self):
        t = difference(16)
        assert t.is_safe_polar()
        assert not t.is_safe_rect()
        PlainDFTSpace(16, 3, coord="polar").affine_map(t)  # must not raise

    def test_mean_map_zeroes_level(self):
        assert difference(8).mean_map == (0.0, 0.0)

    def test_index_query_with_difference(self, rng):
        """End-to-end: difference as a query transformation, vs brute force."""
        from repro.core.engine import SimilarityEngine
        from repro.data import SequenceRelation
        from repro.data.synthetic import random_walks

        rel = SequenceRelation.from_matrix(random_walks(60, 32, seed=4))
        engine = SimilarityEngine(rel, space=NormalFormSpace(32, 2, coord="polar"))
        t = difference(32)
        q = rel.get(0)
        got = engine.range_query(q, 3.0, transformation=t)
        Q = engine.query_spectrum(q)
        want = sorted(
            rid
            for rid in range(60)
            if engine.space.ground_distance(engine.ground_spectra[rid], Q, t) <= 3.0
        )
        assert sorted(r for r, _ in got) == want


class TestExponentialSmoothing:
    def test_weights_sum_to_one_effect_on_constant(self):
        t = exponential_smoothing(32, 0.3)
        x = np.full(32, 7.0)
        assert np.allclose(t.apply_series(x), 7.0, atol=1e-9)

    def test_alpha_one_is_identity(self, rng):
        x = rng.normal(size=16)
        t = exponential_smoothing(16, 1.0)
        assert np.allclose(t.apply_series(x), x, atol=1e-9)

    def test_matches_literal_weighted_window(self, rng):
        x = rng.normal(size=20)
        t = exponential_smoothing(20, 0.5, window=4)
        w = 0.5 * 0.5 ** np.arange(4)
        w = w / w.sum()
        want = np.array(
            [sum(w[j] * x[(i - j) % 20] for j in range(4)) for i in range(20)]
        )
        assert np.allclose(t.apply_series(x), want, atol=1e-9)

    def test_smooths_noise(self, rng):
        base = np.sin(np.linspace(0, 4 * np.pi, 64))
        noisy = base + rng.normal(0, 0.4, size=64)
        t = exponential_smoothing(64, 0.25)
        smoothed = t.apply_series(noisy)
        assert np.std(np.diff(smoothed)) < np.std(np.diff(noisy))

    def test_recency_weighting_tracks_latest(self, rng):
        """Higher alpha follows the raw series more closely."""
        x = np.cumsum(rng.normal(size=64))
        slow = exponential_smoothing(64, 0.1).apply_series(x)
        fast = exponential_smoothing(64, 0.8).apply_series(x)
        assert np.linalg.norm(fast - x) < np.linalg.norm(slow - x)

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_smoothing(16, 0.0)
        with pytest.raises(ValueError):
            exponential_smoothing(16, 1.5)
        with pytest.raises(ValueError):
            exponential_smoothing(16, 0.5, window=0)
        with pytest.raises(ValueError):
            exponential_smoothing(16, 0.5, window=17)

    def test_default_window_covers_mass(self):
        t = exponential_smoothing(128, 0.3)
        # window chosen so truncated tail < 0.1% of total mass
        assert "expsmooth" in t.name

    def test_safe_in_polar(self):
        t = exponential_smoothing(32, 0.4)
        assert t.is_safe_polar()

    def test_composes_with_moving_average(self, rng):
        x = rng.normal(size=32)
        chain = moving_average(32, 4).then(exponential_smoothing(32, 0.5))
        step = exponential_smoothing(32, 0.5).apply_series(
            moving_average(32, 4).apply_series(x)
        )
        assert np.allclose(chain.apply_series(x), step, atol=1e-8)
